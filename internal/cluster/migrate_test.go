package cluster

import (
	"bytes"
	"sync"
	"testing"

	"kona/internal/cllog"
	"kona/internal/mem"
	"kona/internal/slab"
)

// writingMigrationTransport wraps the local transport and injects a
// concurrent writer: every ReadPages call during the pre-seal phase
// first mutates one page of the source extent (through the node, so
// capture sees it), mirroring each write host-side. Once the engine
// seals the extent the writer stops — exactly the behavior of a compute
// runtime whose post-seal ships bounce.
type writingMigrationTransport struct {
	*LocalMigrationTransport
	t      *testing.T
	src    slab.Slab
	node   *MemoryNode
	mirror []byte

	mu     sync.Mutex
	sealed bool
	writes int
	next   uint64 // next page offset to dirty, rotated per call
}

func (w *writingMigrationTransport) ReadPages(node int, epoch uint64, offs []uint64, pageLen int) ([][]byte, error) {
	w.mu.Lock()
	if !w.sealed {
		off := w.src.RemoteOff + (w.next%(w.src.Size/mem.PageSize))*mem.PageSize
		w.next++
		data := bytes.Repeat([]byte{byte(0xC0 + w.writes)}, 128)
		if err := w.node.WriteAt(off, data); err != nil {
			w.mu.Unlock()
			w.t.Fatalf("concurrent write during copy: %v", err)
		}
		copy(w.mirror[off-w.src.RemoteOff:], data)
		w.writes++
	}
	w.mu.Unlock()
	return w.LocalMigrationTransport.ReadPages(node, epoch, offs, pageLen)
}

func (w *writingMigrationTransport) Seal(node int, epoch uint64, off, size uint64) error {
	w.mu.Lock()
	w.sealed = true
	w.mu.Unlock()
	return w.LocalMigrationTransport.Seal(node, epoch, off, size)
}

// TestMigrationPreservesBytesUnderConcurrentWrites live-migrates a slab
// that a writer keeps dirtying throughout the copy and checks the
// flipped member is byte-identical to the final source image: the
// capture/drain/seal protocol must fold every pre-seal write into the
// target, and the delta counters must show it actually happened.
func TestMigrationPreservesBytesUnderConcurrentWrites(t *testing.T) {
	c := repairRack(t, 2)
	src, err := c.AllocSlab(256 << 10)
	if err != nil {
		t.Fatal(err)
	}
	mirror := fillMember(t, c, src, 9)
	srcNode, _ := c.Node(src.Node)

	tr := &writingMigrationTransport{
		LocalMigrationTransport: NewLocalMigrationTransport(c),
		t:                       t,
		src:                     src,
		node:                    srcNode,
		mirror:                  mirror,
	}
	e := NewMigrationEngine(c, tr, MigrationConfig{RetireSweeps: 2})
	epochBefore := c.PlacementEpoch()
	if err := e.migrateOne(src); err != nil {
		t.Fatalf("migrateOne: %v", err)
	}
	if tr.writes == 0 {
		t.Fatalf("test harness never wrote during the copy")
	}
	st := e.Stats()
	if st.Moves != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 1 clean move", st)
	}
	if st.DeltaPages == 0 {
		t.Fatalf("no delta pages re-copied despite %d concurrent writes", tr.writes)
	}
	if c.PlacementEpoch() <= epochBefore {
		t.Fatalf("placement epoch did not advance across the flip")
	}

	members, ok := c.Placements(src.ID)
	if !ok || len(members) != 1 {
		t.Fatalf("placements = %+v", members)
	}
	dst := members[0]
	if dst.Node == src.Node {
		t.Fatalf("member did not move off node %d", src.Node)
	}
	if got := readMember(t, c, dst); !bytes.Equal(got, mirror) {
		t.Fatalf("migrated member diverged from source image")
	}

	// The old extent stays sealed through its hold-down: a straggler
	// writer still holding the pre-flip placement fails loudly instead of
	// writing into a window that could be recycled.
	if err := srcNode.WriteAt(src.RemoteOff, make([]byte, 64)); !IsSealedErr(err) {
		t.Fatalf("straggler write to retired extent = %v, want sealed error", err)
	}
	// No load reports ever arrived, so SweepOnce only ages retirements.
	for i := 0; i < 2; i++ {
		if moves := e.SweepOnce(); moves != 0 {
			t.Fatalf("idle sweep committed %d moves", moves)
		}
	}
	if st := e.Stats(); st.Retired != 1 {
		t.Fatalf("retired = %d, want 1 after hold-down", st.Retired)
	}
	if err := srcNode.WriteAt(src.RemoteOff, make([]byte, 64)); err != nil {
		t.Fatalf("write to released window still fenced: %v", err)
	}
	// The vacated window is back on the free list: the next same-size
	// carve reuses it, fence-free.
	if off, err := srcNode.CarveSlab(src.Size); err != nil || off != src.RemoteOff {
		t.Fatalf("retired window not reusable: off=%d err=%v, want %d", off, err, src.RemoteOff)
	}
}

// TestSealRejectsWritesAndWholeLogBatches pins the memnode-side fence: a
// sealed extent rejects direct writes, and a log batch touching it is
// rejected as a whole BEFORE any entry is applied — a half-applied batch
// racing the flip would tear the migrated image.
func TestSealRejectsWritesAndWholeLogBatches(t *testing.T) {
	n := NewMemoryNode(0, 1<<20)
	n.Seal(8192, 4096)

	if err := n.WriteAt(8192, make([]byte, 64)); !IsSealedErr(err) {
		t.Fatalf("write into sealed extent = %v, want sealed error", err)
	}
	// Writes outside the sealed range proceed.
	if err := n.WriteAt(0, make([]byte, 64)); err != nil {
		t.Fatalf("write outside seal rejected: %v", err)
	}

	// Batch with one clean entry and one sealed entry: all-or-nothing.
	entries := []cllog.Entry{
		{RemoteOff: 0, Data: bytes.Repeat([]byte{0xEE}, mem.CacheLineSize)},
		{RemoteOff: 8192, Data: bytes.Repeat([]byte{0xEE}, mem.CacheLineSize)},
	}
	packed, err := cllog.Pack(entries, n.logMR.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	applied, _, err := n.UnpackLog(packed)
	if !IsSealedErr(err) {
		t.Fatalf("UnpackLog into sealed extent = %v, want sealed error", err)
	}
	if applied != 0 {
		t.Fatalf("%d entries applied from a rejected batch", applied)
	}
	if n.PoolBytes()[0] == 0xEE {
		t.Fatalf("clean entry applied before the batch was rejected (torn batch)")
	}

	// Unseal lifts the fence and the same batch lands whole.
	n.Unseal(8192, 4096)
	if applied, _, err = n.UnpackLog(packed); err != nil || applied != 2 {
		t.Fatalf("post-unseal UnpackLog = %d, %v", applied, err)
	}
	if n.PoolBytes()[0] != 0xEE || n.PoolBytes()[8192] != 0xEE {
		t.Fatalf("entries misplaced after unseal")
	}
}

// failingWriteTransport fails every Write to a chosen node — the
// migration target dying mid-copy.
type failingWriteTransport struct {
	*LocalMigrationTransport
	failNode int
}

func (f *failingWriteTransport) Write(node int, epoch uint64, off uint64, bufs [][]byte) error {
	if node == f.failNode {
		nn, _ := f.Ctrl.Node(node)
		if nn != nil {
			nn.Fail()
		}
	}
	return f.LocalMigrationTransport.Write(node, epoch, off, bufs)
}

// TestMigrationAbortUnwinds covers the two abort windows: the target
// dying during the copy (before seal) and during the committed flip
// (after seal). Both must leave the source placement untouched, the
// source extent writable, and the carved target memory released.
func TestMigrationAbortUnwinds(t *testing.T) {
	// Target dies mid-copy: the first Write to it fails the node.
	c := repairRack(t, 2)
	src, err := c.AllocSlab(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want := fillMember(t, c, src, 4)
	target := 1 - src.Node
	e := NewMigrationEngine(c, &failingWriteTransport{
		LocalMigrationTransport: NewLocalMigrationTransport(c),
		failNode:                target,
	}, MigrationConfig{})
	if err := e.migrateOne(src); err == nil {
		t.Fatalf("migration onto a dying target committed")
	}
	if st := e.Stats(); st.Failures != 1 || st.Moves != 0 {
		t.Fatalf("stats = %+v, want 1 failure / 0 moves", st)
	}
	members, _ := c.Placements(src.ID)
	if len(members) != 1 || members[0].Node != src.Node || members[0].RemoteOff != src.RemoteOff {
		t.Fatalf("placement changed by an aborted migration: %+v", members)
	}
	srcNode, _ := c.Node(src.Node)
	if err := srcNode.WriteAt(src.RemoteOff, make([]byte, 64)); err != nil {
		t.Fatalf("source extent fenced after abort: %v", err)
	}
	if got := readMember(t, c, src); !bytes.Equal(got[64:], want[64:]) {
		t.Fatalf("source bytes corrupted by aborted migration")
	}

	// Target dies between seal and flip: CommitMigration must refuse and
	// the unwind must lift the seal so writers resume.
	c2 := repairRack(t, 2)
	src2, err := c2.AllocSlab(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	fillMember(t, c2, src2, 5)
	tr := &sealKillTransport{LocalMigrationTransport: NewLocalMigrationTransport(c2), killNode: 1 - src2.Node}
	e2 := NewMigrationEngine(c2, tr, MigrationConfig{})
	if err := e2.migrateOne(src2); err == nil {
		t.Fatalf("flip committed onto a node that died after seal")
	}
	members2, _ := c2.Placements(src2.ID)
	if len(members2) != 1 || members2[0].Node != src2.Node {
		t.Fatalf("placement changed by a post-seal abort: %+v", members2)
	}
	srcNode2, _ := c2.Node(src2.Node)
	if err := srcNode2.WriteAt(src2.RemoteOff, make([]byte, 64)); err != nil {
		t.Fatalf("seal not lifted by the unwind: %v", err)
	}
}

// sealKillTransport fails the target node right after the source is
// sealed, so the abort path runs with sealed=true.
type sealKillTransport struct {
	*LocalMigrationTransport
	killNode int
}

func (s *sealKillTransport) Seal(node int, epoch uint64, off, size uint64) error {
	if err := s.LocalMigrationTransport.Seal(node, epoch, off, size); err != nil {
		return err
	}
	if n, ok := s.Ctrl.Node(s.killNode); ok {
		n.Fail()
	}
	return nil
}

// TestLoadMapScoresAndPolicy unit-tests the load map: EWMA over
// cumulative-counter deltas, counter-reset tolerance, the pending gauge,
// and the placement policy switch it drives.
func TestLoadMapScoresAndPolicy(t *testing.T) {
	c := repairRack(t, 2)

	// First report: delta is the absolute counters, halved by alpha.
	c.ReportLoad(0, LoadSample{ReadBytes: 1000})
	lm := c.LoadMap()
	if len(lm) != 1 || lm[0].Node != 0 || lm[0].Score != 500 {
		t.Fatalf("load map after first report = %+v", lm)
	}
	// Steady counters: delta 0 decays the score.
	c.ReportLoad(0, LoadSample{ReadBytes: 1000})
	if got := c.LoadMap()[0].Score; got != 250 {
		t.Fatalf("score after idle report = %g, want 250", got)
	}
	// Counter reset (node restart): the lower absolute IS the delta, not
	// a giant unsigned wraparound.
	c.ReportLoad(0, LoadSample{ReadBytes: 100})
	if got := c.LoadMap()[0].Score; got != 175 {
		t.Fatalf("score after counter reset = %g, want 175", got)
	}
	// A pending-only sample is a gauge update: EWMA untouched.
	c.ReportLoad(1, LoadSample{PendingBytes: 5000})
	lm = c.LoadMap()
	if lm[1].Score != 0 || lm[1].Pending != 5000 {
		t.Fatalf("pending-only report = %+v", lm[1])
	}

	if err := c.SetPlacementPolicy("bogus"); err == nil {
		t.Fatalf("unknown policy accepted")
	}
	if err := c.SetPlacementPolicy(PolicyLoad); err != nil {
		t.Fatal(err)
	}
	// Node 1 now carries the bigger effective load (pending gauge), so a
	// load-aware carve must land on node 0.
	s, err := c.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node != 0 {
		t.Fatalf("load-aware carve landed on the loaded node %d", s.Node)
	}
	// Anti-affinity: replicas of one group avoid sharing a node even when
	// it is the coldest.
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if members[0].Node == members[1].Node {
		t.Fatalf("replicas share node %d", members[0].Node)
	}
}

// TestPlacementsHealthConsistentWithRemove is the regression test for
// the Placements/removeLocked race: liveness must be computed under the
// same critical section as the membership copy, so a reader racing a
// node removal sees either the pre-removal state (all members live) or
// the post-removal state (the victim flagged dead) — never a torn mix,
// and never a vanished member. Run with -race this also proves the
// locking.
func TestPlacementsHealthConsistentWithRemove(t *testing.T) {
	c := repairRack(t, 3)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	gid := members[0].ID
	victim := members[1].Node

	ms, live, ok := c.PlacementsHealth(gid)
	if !ok || len(ms) != 2 || !live[0] || !live[1] {
		t.Fatalf("healthy rack health = %v %v %v", ms, live, ok)
	}

	stop := make(chan struct{})
	bad := make(chan string, 1)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms, live, ok := c.PlacementsHealth(gid)
				if !ok || len(ms) != 2 {
					select {
					case bad <- "member vanished mid-remove":
					default:
					}
					return
				}
				for i, m := range ms {
					if m.Node != victim && !live[i] {
						select {
						case bad <- "surviving member flagged dead":
						default:
						}
						return
					}
				}
			}
		}()
	}
	c.Remove(victim)
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}

	// Post-removal: the dead member stays in the group (the retained-entry
	// protocol needs its link key stable) but is flagged dead.
	ms, live, ok = c.PlacementsHealth(gid)
	if !ok || len(ms) != 2 {
		t.Fatalf("dead member pruned from group: %v", ms)
	}
	for i, m := range ms {
		if m.Node == victim && live[i] {
			t.Fatalf("removed node's member flagged live")
		}
		if m.Node != victim && !live[i] {
			t.Fatalf("surviving member flagged dead")
		}
	}
	if c.DegradedCount() != 1 {
		t.Fatalf("degraded = %d, want 1", c.DegradedCount())
	}
}

// TestCarveMigrationTargetRules pins the carve preconditions: the target
// is the coldest unoccupied live node, a vanished source member is
// refused, and a degraded source is left to the repair engine.
func TestCarveMigrationTargetRules(t *testing.T) {
	c := repairRack(t, 3)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := members[0]

	// The only non-member node is the target regardless of load order.
	target, err := c.CarveMigrationTarget(src)
	if err != nil {
		t.Fatal(err)
	}
	if target.Node == members[0].Node || target.Node == members[1].Node {
		t.Fatalf("migration target %d already holds a member (anti-affinity broken)", target.Node)
	}
	if target.Size != src.Size || target.ID != src.ID || target.Base != src.Base {
		t.Fatalf("target descriptor mismatch: %+v vs src %+v", target, src)
	}
	c.AbandonMigration(target)

	// A source that is no longer a member is refused.
	gone := src
	gone.RemoteOff += src.Size
	if _, err := c.CarveMigrationTarget(gone); err == nil {
		t.Fatalf("carved a target for a vanished member")
	}

	// A degraded source belongs to repair, not migration.
	vn, _ := c.Node(members[1].Node)
	vn.Fail()
	c.HealthSweep()
	if _, err := c.CarveMigrationTarget(members[1]); err == nil {
		t.Fatalf("migration touched a degraded member")
	}
}
