package cluster

import (
	"bytes"
	"testing"
	"time"

	"kona/internal/cllog"
	"kona/internal/mem"
)

// Lease directory unit tests (DESIGN.md §14): the single-writer /
// multi-reader state machine, injectable-clock TTL expiry, takeover
// epoch bumps, and the memnode-side fences that reject a zombie
// writer's WriteLog batch all-or-nothing.

// leaseRack is a controller with n registered 8MB in-process nodes and
// an injectable lease clock starting at t0.
func leaseRack(t *testing.T, n int) (*Controller, *time.Time) {
	t.Helper()
	c := NewController()
	for i := 0; i < n; i++ {
		if err := c.Register(NewMemoryNode(i, 8<<20)); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Unix(1000, 0)
	c.SetLeaseClock(func() time.Time { return now })
	return c, &now
}

func TestLeaseDirectoryStateMachine(t *testing.T) {
	c, _ := leaseRack(t, 1)
	s, err := c.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const alice, bob, carol = 11, 22, 33

	// First writer acquire opens epoch 1.
	g, err := c.AcquireLease(s.ID, alice, LeaseWriter, 0)
	if err != nil {
		t.Fatalf("writer acquire: %v", err)
	}
	if g.Epoch != 1 || g.Version != 0 {
		t.Fatalf("first grant epoch=%d version=%d, want 1/0", g.Epoch, g.Version)
	}
	// Re-acquire by the holder renews, no epoch bump.
	if g, err = c.AcquireLease(s.ID, alice, LeaseWriter, 0); err != nil || g.Epoch != 1 {
		t.Fatalf("idempotent re-acquire: %v epoch=%d", err, g.Epoch)
	}
	// A conflicting writer acquire is rejected with the conflict mark.
	if _, err = c.AcquireLease(s.ID, bob, LeaseWriter, 0); !IsLeaseConflictErr(err) {
		t.Fatalf("conflicting acquire: got %v, want lease conflict", err)
	}
	// Readers coexist with the writer (invalidation is their protection).
	if _, err = c.AcquireLease(s.ID, bob, LeaseReader, 0); err != nil {
		t.Fatalf("reader acquire: %v", err)
	}
	if _, err = c.AcquireLease(s.ID, carol, LeaseReader, 0); err != nil {
		t.Fatalf("second reader acquire: %v", err)
	}
	// A reader's upgrade attempt conflicts while the writer lease is held.
	if _, err = c.AcquireLease(s.ID, bob, LeaseWriter, 0); !IsLeaseConflictErr(err) {
		t.Fatalf("upgrade under live writer: got %v, want lease conflict", err)
	}
	// Publish bumps the version; readers see it on renew.
	if _, err = c.PublishLease(s.ID, alice); err != nil {
		t.Fatal(err)
	}
	if g, err = c.RenewLease(s.ID, bob, LeaseReader, 0); err != nil || g.Version != 1 {
		t.Fatalf("reader renew after publish: %v version=%d, want 1", err, g.Version)
	}
	// Publishing without the writer lease is rejected.
	if _, err = c.PublishLease(s.ID, bob); !IsLeaseConflictErr(err) {
		t.Fatalf("publish by reader: got %v, want lease conflict", err)
	}
	// Clean release opens the slot; bob's upgrade drops his reader entry
	// and bumps the epoch (handover).
	if err = c.ReleaseLease(s.ID, alice); err != nil {
		t.Fatal(err)
	}
	if g, err = c.AcquireLease(s.ID, bob, LeaseWriter, 0); err != nil || g.Epoch != 2 {
		t.Fatalf("upgrade after release: %v epoch=%d, want 2", err, g.Epoch)
	}
	st := c.LeaseSnapshot()
	if st.Writers != 1 || st.Readers != 1 { // carol still reads
		t.Fatalf("snapshot writers=%d readers=%d, want 1/1", st.Writers, st.Readers)
	}
	if st.Rejects < 3 {
		t.Fatalf("snapshot rejects=%d, want >=3", st.Rejects)
	}

	// Unknown group and zero runtime id are rejected outright.
	if _, err = c.AcquireLease(s.ID+999, alice, LeaseWriter, 0); err == nil {
		t.Fatal("acquire on unknown group succeeded")
	}
	if _, err = c.AcquireLease(s.ID, 0, LeaseWriter, 0); err == nil {
		t.Fatal("acquire with runtime id 0 succeeded")
	}
}

func TestLeaseTTLExpiryAndTakeover(t *testing.T) {
	c, now := leaseRack(t, 1)
	c.SetLeaseTTL(time.Second)
	s, err := c.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const alice, bob = 1, 2

	if _, err = c.AcquireLease(s.ID, alice, LeaseWriter, 0); err != nil {
		t.Fatal(err)
	}
	// Within the TTL a rival acquire still conflicts.
	*now = now.Add(900 * time.Millisecond)
	if _, err = c.AcquireLease(s.ID, bob, LeaseWriter, 0); !IsLeaseConflictErr(err) {
		t.Fatalf("pre-expiry acquire: got %v, want conflict", err)
	}
	// Past the TTL the takeover succeeds and bumps the epoch.
	*now = now.Add(200 * time.Millisecond)
	g, err := c.AcquireLease(s.ID, bob, LeaseWriter, 0)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if g.Epoch != 2 {
		t.Fatalf("takeover epoch=%d, want 2", g.Epoch)
	}
	// The zombie's renew is the stop-writing signal.
	if _, err = c.RenewLease(s.ID, alice, LeaseWriter, 0); !IsLeaseConflictErr(err) {
		t.Fatalf("zombie renew: got %v, want conflict", err)
	}
	st := c.LeaseSnapshot()
	if st.Expirations != 1 || st.Takeovers != 1 {
		t.Fatalf("expirations=%d takeovers=%d, want 1/1", st.Expirations, st.Takeovers)
	}

	// Reader leases expire silently: an expired reader just re-grants.
	if _, err = c.AcquireLease(s.ID, alice, LeaseReader, 0); err != nil {
		t.Fatal(err)
	}
	*now = now.Add(2 * time.Second)
	if snap := c.LeaseSnapshot(); snap.Readers != 1 {
		t.Fatalf("pre-sweep reader gauge=%d, want 1 (lazy expiry)", snap.Readers)
	}
	if _, err = c.RenewLease(s.ID, alice, LeaseReader, 0); err != nil {
		t.Fatalf("reader renew after lapse: %v", err)
	}
}

// packInto packs entries into node n's log region and returns the byte
// count, mimicking what a compute runtime's log ship RDMA-writes.
func packInto(t *testing.T, n *MemoryNode, entries []cllog.Entry) int {
	t.Helper()
	packed, err := cllog.Pack(entries, n.logMR.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return packed
}

func TestZombieWriterWriteLogFencedWholeBatch(t *testing.T) {
	c, now := leaseRack(t, 1)
	c.SetLeaseTTL(time.Second)
	s, err := c.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := c.Node(s.Node)
	const alice, bob = 7, 8

	if _, err = c.AcquireLease(s.ID, alice, LeaseWriter, 0); err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{0xAA}, mem.CacheLineSize)
	entries := []cllog.Entry{
		{RemoteOff: s.RemoteOff, Data: line},
		{RemoteOff: s.RemoteOff + 4096, Data: line},
	}
	// The lease holder's batch applies.
	if _, _, err := n.UnpackLogFrom(alice, packInto(t, n, entries)); err != nil {
		t.Fatalf("holder's batch rejected: %v", err)
	}
	// An identified foreign writer is fenced; so is an unidentified
	// legacy writer (runtime 0).
	for _, zombie := range []uint64{bob, 0} {
		if _, _, err := n.UnpackLogFrom(zombie, packInto(t, n, entries)); !IsLeaseFencedErr(err) {
			t.Fatalf("runtime %d batch: got %v, want lease-fenced", zombie, err)
		}
	}
	// Plain writes are fenced identically.
	if err := n.WriteAtFrom(bob, s.RemoteOff, line); !IsLeaseFencedErr(err) {
		t.Fatalf("foreign WriteAt: got %v, want lease-fenced", err)
	}

	// Expire alice and let bob take over: the fences flip to bob, and the
	// zombie's batch — even one with a single fenced entry among clean
	// ones — is rejected with NO byte applied (all-or-nothing).
	*now = now.Add(2 * time.Second)
	if _, err = c.AcquireLease(s.ID, bob, LeaseWriter, 0); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	marker := bytes.Repeat([]byte{0x5B}, mem.CacheLineSize)
	if _, _, err := n.UnpackLogFrom(bob, packInto(t, n, []cllog.Entry{{RemoteOff: s.RemoteOff, Data: marker}})); err != nil {
		t.Fatalf("successor's batch rejected: %v", err)
	}
	zombieLine := bytes.Repeat([]byte{0xEE}, mem.CacheLineSize)
	batch := []cllog.Entry{
		{RemoteOff: s.RemoteOff + 8192, Data: zombieLine}, // fenced extent
		{RemoteOff: s.RemoteOff, Data: zombieLine},        // would clobber bob's marker
	}
	if _, _, err := n.UnpackLogFrom(alice, packInto(t, n, batch)); !IsLeaseFencedErr(err) {
		t.Fatalf("zombie batch after takeover: got %v, want lease-fenced", err)
	}
	got := make([]byte, mem.CacheLineSize)
	if err := n.ReadAt(s.RemoteOff, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, marker) {
		t.Fatal("zombie batch partially applied: successor's bytes clobbered")
	}
	got2 := make([]byte, mem.CacheLineSize)
	if err := n.ReadAt(s.RemoteOff+8192, got2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got2, zombieLine) {
		t.Fatal("zombie batch partially applied: fenced entry landed")
	}

	// Releasing the group's slab drops its fences and directory entry.
	if err := c.ReleaseSlab(s); err != nil {
		t.Fatal(err)
	}
	if snap := c.LeaseSnapshot(); snap.Writers != 0 {
		t.Fatalf("writer gauge=%d after group release, want 0", snap.Writers)
	}
}

// TestLeaseSurvivesRepairFlip pins the lease-table × repair interaction:
// a repair flip replaces a leased group's dead member, and the repaired
// extent must reject the same stale writers the old one did.
func TestLeaseSurvivesRepairFlip(t *testing.T) {
	c, _ := leaseRack(t, 3)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	group := members[0].ID
	const alice, bob = 5, 6
	if _, err = c.AcquireLease(group, alice, LeaseWriter, 0); err != nil {
		t.Fatal(err)
	}

	// Kill the secondary member's node and repair onto the spare.
	victim := members[1].Node
	vn, _ := c.Node(victim)
	vn.Fail()
	if !c.ReportNodeFailure(victim) {
		t.Fatal("victim not expelled")
	}
	degraded := c.DegradedSlabs()
	if len(degraded) != 1 {
		t.Fatalf("degraded slabs = %d, want 1", len(degraded))
	}
	target, err := c.CarveRepairTarget(degraded[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CommitRepair(degraded[0], target); err != nil {
		t.Fatal(err)
	}

	// The repaired member's fresh extent carries alice's fence.
	tn, _ := c.Node(target.Node)
	line := bytes.Repeat([]byte{1}, mem.CacheLineSize)
	if err := tn.WriteAtFrom(bob, target.RemoteOff, line); !IsLeaseFencedErr(err) {
		t.Fatalf("foreign write to repaired member: got %v, want lease-fenced", err)
	}
	if err := tn.WriteAtFrom(alice, target.RemoteOff, line); err != nil {
		t.Fatalf("holder write to repaired member: %v", err)
	}
}

// TestLeaseSurvivesMigrationFlip is the migration twin: CommitMigration
// re-arms the writer's fence on the migration target.
func TestLeaseSurvivesMigrationFlip(t *testing.T) {
	c, _ := leaseRack(t, 2)
	s, err := c.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const alice, bob = 3, 4
	if _, err = c.AcquireLease(s.ID, alice, LeaseWriter, 0); err != nil {
		t.Fatal(err)
	}
	dst, err := c.CarveMigrationTarget(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CommitMigration(s, dst); err != nil {
		t.Fatal(err)
	}
	dn, _ := c.Node(dst.Node)
	line := bytes.Repeat([]byte{2}, mem.CacheLineSize)
	if err := dn.WriteAtFrom(bob, dst.RemoteOff, line); !IsLeaseFencedErr(err) {
		t.Fatalf("foreign write to migrated member: got %v, want lease-fenced", err)
	}
	if err := dn.WriteAtFrom(alice, dst.RemoteOff, line); err != nil {
		t.Fatalf("holder write to migrated member: %v", err)
	}
}
