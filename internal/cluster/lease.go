package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"kona/internal/slab"
)

// Lease directory (DESIGN.md §14): the controller-side ownership map that
// lets several compute runtimes share a placement group. Each group holds
// at most ONE writer lease and any number of reader leases at a time.
// Grants are TTL-bounded; expiry is lazy (checked against the injectable
// clock on every directory operation), and a writer takeover after expiry
// bumps the group's lease epoch and re-arms the memnode-side extent
// fences with the new holder's identity, so the zombie writer's next
// WriteLog batch is rejected all-or-nothing (node.go, leaseErrMark).
//
// Invalidation is pull-based: the writer's publish (PublishLease, wire
// kind lease-invalidate) bumps the group's version, and readers observe
// the new version on their next renew — the renew response piggybacks the
// version, and the compute runtime drops its cached pages for the group
// when it advances. §14 spells out why this still never shows a reader
// pre-invalidation bytes for a published version.

// Lease modes, carried in Request.Length on the wire.
const (
	LeaseReader = 1
	LeaseWriter = 2
)

// DefaultLeaseTTL bounds how long a crashed writer can wedge a group
// before another runtime may take over.
const DefaultLeaseTTL = 2 * time.Second

// leaseConflictMark is the substring every conflicting-acquire rejection
// carries; like sealedErrMark it survives the wire.
const leaseConflictMark = "lease conflict"

// IsLeaseConflictErr reports whether err is (or wraps) a lease-conflict
// rejection: another runtime holds an unexpired writer lease (or the
// caller's own writer lease was lost to a takeover).
func IsLeaseConflictErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), leaseConflictMark)
}

// LeaseGrant is a successful lease operation's result.
type LeaseGrant struct {
	// Epoch is the group's lease epoch: bumped on every writer handover,
	// it tells a returning writer whether it is still the incumbent.
	Epoch uint64
	// Version is the group's publish counter. A reader whose cached
	// version is older must drop its cached pages before trusting them.
	Version uint64
	// TTL is the granted validity window, from the controller's clock at
	// grant time.
	TTL time.Duration
}

// leaseState is one group's directory entry. Guarded by Controller.leaseMu.
type leaseState struct {
	writer       uint64 // runtime holding the writer lease; 0 = none
	writerExpiry time.Time
	readers      map[uint64]time.Time // runtime → expiry
	epoch        uint64
	version      uint64
}

// LeaseStats is the directory's counter snapshot, published on /metrics.
type LeaseStats struct {
	Grants      uint64 // successful acquires + renews
	Rejects     uint64 // conflicting acquires / lost-lease renews
	Expirations uint64 // writer leases lazily expired
	Takeovers   uint64 // writer handovers after expiry (epoch bumps)
	Publishes   uint64 // writer version bumps (invalidations)
	FenceErrors uint64 // best-effort fence pushes that failed
	Writers     int    // groups with a live writer lease
	Readers     int    // live reader leases across all groups
}

// leaseDir is the directory state embedded in Controller. leaseMu is the
// OUTER lock: directory operations take leaseMu and then — through the
// fencer or a membership snapshot — c.mu. Nothing takes leaseMu while
// holding c.mu.
type leaseDir struct {
	leaseMu     sync.Mutex
	leases      map[uint64]*leaseState
	leaseTTL    time.Duration
	leaseNow    func() time.Time
	leaseFencer func(m slab.Slab, holder uint64) error
	leaseStats  LeaseStats
}

// SetLeaseTTL sets the default lease validity window (used when a request
// asks for TTL 0). Zero or negative restores DefaultLeaseTTL.
func (c *Controller) SetLeaseTTL(d time.Duration) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	c.leaseTTL = d
}

// SetLeaseClock installs the directory's time source (injectable so tests
// can expire leases deterministically). nil restores time.Now.
func (c *Controller) SetLeaseClock(now func() time.Time) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	c.leaseNow = now
}

// SetLeaseFencer installs the fence-push hook called (best-effort, under
// leaseMu) whenever a group's writer changes: once per group member, with
// holder 0 meaning "clear". The default pushes to the in-process
// MemoryNode; the TCP controller server installs a wire pusher.
func (c *Controller) SetLeaseFencer(f func(m slab.Slab, holder uint64) error) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	c.leaseFencer = f
}

func (c *Controller) leaseNowLocked() time.Time {
	if c.leaseNow != nil {
		return c.leaseNow()
	}
	return time.Now()
}

func (c *Controller) leaseTTLLocked(requested time.Duration) time.Duration {
	if requested > 0 {
		return requested
	}
	if c.leaseTTL > 0 {
		return c.leaseTTL
	}
	return DefaultLeaseTTL
}

// leaseMembers snapshots a group's current members (c.mu held briefly;
// leaseMu may be held by the caller — leaseMu→c.mu is the allowed order).
func (c *Controller) leaseMembers(group uint64) []slab.Slab {
	c.mu.Lock()
	defer c.mu.Unlock()
	members := c.groups[group]
	out := make([]slab.Slab, len(members))
	copy(out, members)
	return out
}

// fenceLocal is the default fence pusher: resolve the member's node
// in-process and arm/clear its extent fence. Members whose node is gone
// or reincarnated are skipped — repair will refence the replacement.
func (c *Controller) fenceLocal(m slab.Slab, holder uint64) error {
	c.mu.Lock()
	n, ok := c.nodes[m.Node]
	live := ok && (m.Epoch == 0 || c.incarn[m.Node] == m.Epoch)
	c.mu.Unlock()
	if !live {
		return nil
	}
	n.LeaseFence(m.RemoteOff, m.Size, holder)
	return nil
}

// pushFencesLocked arms (or, with holder 0, clears) the extent fence on
// every member of group. Push failures are counted, not fatal: a member
// whose fence push failed is either dead (repair refences the
// replacement) or will reject the next push-retry; meanwhile the
// directory itself still refuses the stale writer's renew. Caller holds
// leaseMu.
func (c *Controller) pushFencesLocked(group, holder uint64) {
	fencer := c.leaseFencer
	if fencer == nil {
		fencer = c.fenceLocal
	}
	for _, m := range c.leaseMembers(group) {
		if err := fencer(m, holder); err != nil {
			c.leaseStats.FenceErrors++
		}
	}
}

// expireLocked lazily retires expired leases in st. Caller holds leaseMu.
func (c *Controller) expireLocked(st *leaseState, now time.Time) {
	if st.writer != 0 && now.After(st.writerExpiry) {
		// The writer's lease lapsed. The slot opens, but the fences stay
		// armed with the old holder until a successor takes over: until
		// then the old writer is still the group's only writer, so
		// accepting its late flushes loses nothing (GFS-style grace).
		st.writer = 0
		c.leaseStats.Expirations++
	}
	for r, exp := range st.readers {
		if now.After(exp) {
			delete(st.readers, r)
		}
	}
}

// leaseStateLocked finds or creates group's directory entry, verifying
// the group exists. Caller holds leaseMu.
func (c *Controller) leaseStateLocked(group uint64) (*leaseState, error) {
	c.mu.Lock()
	_, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("controller: lease on unknown group %d", group)
	}
	st := c.leases[group]
	if st == nil {
		st = &leaseState{readers: make(map[uint64]time.Time)}
		c.leases[group] = st
	}
	return st, nil
}

// AcquireLease grants runtime a reader or writer lease on group. A writer
// acquire while another runtime's writer lease is unexpired fails with a
// lease-conflict error; acquiring over an expired writer is a takeover —
// the lease epoch bumps and every member's extent fence is re-armed with
// the new holder, fencing the zombie out. A reader acquire never
// conflicts. Acquiring a mode already held renews it.
func (c *Controller) AcquireLease(group, runtime uint64, mode int, ttl time.Duration) (LeaseGrant, error) {
	if runtime == 0 {
		return LeaseGrant{}, fmt.Errorf("controller: lease acquire needs a nonzero runtime id")
	}
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	st, err := c.leaseStateLocked(group)
	if err != nil {
		return LeaseGrant{}, err
	}
	now := c.leaseNowLocked()
	c.expireLocked(st, now)
	ttl = c.leaseTTLLocked(ttl)
	switch mode {
	case LeaseWriter:
		if st.writer != 0 && st.writer != runtime {
			c.leaseStats.Rejects++
			return LeaseGrant{}, fmt.Errorf("controller: group %d writer held by runtime %d: %s", group, st.writer, leaseConflictMark)
		}
		handover := st.writer == 0 && st.epoch > 0
		first := st.writer == 0 && st.epoch == 0
		if first || handover {
			st.epoch++
			if handover {
				c.leaseStats.Takeovers++
			}
		}
		delete(st.readers, runtime) // an upgrade drops the reader entry
		needFence := st.writer != runtime
		st.writer = runtime
		st.writerExpiry = now.Add(ttl)
		if needFence {
			c.pushFencesLocked(group, runtime)
		}
	case LeaseReader:
		st.readers[runtime] = now.Add(ttl)
	default:
		return LeaseGrant{}, fmt.Errorf("controller: unknown lease mode %d", mode)
	}
	c.leaseStats.Grants++
	return LeaseGrant{Epoch: st.epoch, Version: st.version, TTL: ttl}, nil
}

// RenewLease extends runtime's existing lease. A writer renew fails with
// a lease-conflict error when the lease was lost (expired and taken
// over, or never held) — the signal to stop writing. A reader renew is a
// re-grant; its returned Version is the invalidation channel: when it
// advanced past the reader's cached version, the reader must drop its
// cached pages for the group.
func (c *Controller) RenewLease(group, runtime uint64, mode int, ttl time.Duration) (LeaseGrant, error) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	st, err := c.leaseStateLocked(group)
	if err != nil {
		return LeaseGrant{}, err
	}
	now := c.leaseNowLocked()
	c.expireLocked(st, now)
	ttl = c.leaseTTLLocked(ttl)
	switch mode {
	case LeaseWriter:
		if st.writer != runtime {
			c.leaseStats.Rejects++
			return LeaseGrant{}, fmt.Errorf("controller: group %d writer lease not held by runtime %d: %s", group, runtime, leaseConflictMark)
		}
		st.writerExpiry = now.Add(ttl)
	case LeaseReader:
		st.readers[runtime] = now.Add(ttl)
	default:
		return LeaseGrant{}, fmt.Errorf("controller: unknown lease mode %d", mode)
	}
	c.leaseStats.Grants++
	return LeaseGrant{Epoch: st.epoch, Version: st.version, TTL: ttl}, nil
}

// ReleaseLease drops every lease runtime holds on group. Releasing the
// writer lease clears the member fences (holder 0), reopening the group
// for ordinary unleased writes. Releasing a lease not held is a no-op.
func (c *Controller) ReleaseLease(group, runtime uint64) error {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	st := c.leases[group]
	if st == nil {
		return nil
	}
	delete(st.readers, runtime)
	if st.writer == runtime && runtime != 0 {
		st.writer = 0
		c.pushFencesLocked(group, 0)
	}
	return nil
}

// PublishLease is the writer's invalidation: it bumps group's version —
// the signal readers poll for on renew — and refreshes the writer lease.
// The caller must have flushed its dirty lines to every member BEFORE
// publishing; that ordering is what §14's monotonicity argument rests
// on. Publishing without holding the writer lease fails with a
// lease-conflict error.
func (c *Controller) PublishLease(group, runtime uint64) (LeaseGrant, error) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	st, err := c.leaseStateLocked(group)
	if err != nil {
		return LeaseGrant{}, err
	}
	now := c.leaseNowLocked()
	c.expireLocked(st, now)
	if st.writer != runtime || runtime == 0 {
		c.leaseStats.Rejects++
		return LeaseGrant{}, fmt.Errorf("controller: group %d publish by non-writer runtime %d: %s", group, runtime, leaseConflictMark)
	}
	st.version++
	ttl := c.leaseTTLLocked(0)
	st.writerExpiry = now.Add(ttl)
	c.leaseStats.Publishes++
	return LeaseGrant{Epoch: st.epoch, Version: st.version, TTL: ttl}, nil
}

// LeaseSnapshot returns the directory's counters plus live writer/reader
// totals (lazily expiring nothing — gauges reflect granted state).
func (c *Controller) LeaseSnapshot() LeaseStats {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	out := c.leaseStats
	for _, st := range c.leases {
		if st.writer != 0 {
			out.Writers++
		}
		out.Readers += len(st.readers)
	}
	return out
}

// refenceMember re-arms the extent fence on one freshly committed group
// member (a repair or migration target): the lease table survives the
// flip, so the new extent must reject the same stale writers the old one
// did. Called after CommitRepair/CommitMigration succeed, outside c.mu.
func (c *Controller) refenceMember(m slab.Slab) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	st := c.leases[m.ID]
	if st == nil || st.writer == 0 {
		return
	}
	fencer := c.leaseFencer
	if fencer == nil {
		fencer = c.fenceLocal
	}
	if err := fencer(m, st.writer); err != nil {
		c.leaseStats.FenceErrors++
	}
}

// dropLeaseState retires a group's directory entry once the group itself
// is released (its version history dies with the data).
func (c *Controller) dropLeaseState(group uint64) {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	delete(c.leases, group)
}
