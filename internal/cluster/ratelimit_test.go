package cluster

import (
	"testing"
	"time"
)

// fakeBudget returns a budget on a fake injectable clock; sleeps advance
// the clock and accumulate in *slept.
func fakeBudget(t *testing.T, rate, burst float64, clock *time.Time, slept *time.Duration) *byteBudget {
	t.Helper()
	b := newByteBudget(rate, burst)
	b.now = func() time.Time { return *clock }
	b.sleep = func(d time.Duration) {
		if d < 0 {
			t.Fatalf("negative sleep %v", d)
		}
		*slept += d
		*clock = clock.Add(d)
	}
	return b
}

// TestByteBudgetZeroRate pins the disabled configuration: rate 0 (the
// "-budget 0 = unlimited" flag value) must never sleep and never panic,
// whatever the take sizes.
func TestByteBudgetZeroRate(t *testing.T) {
	b := newByteBudget(0, 0)
	b.sleep = func(d time.Duration) { t.Fatalf("zero-rate budget slept %v", d) }
	b.take(0)
	b.take(-1)
	for i := 0; i < 16; i++ {
		b.take(1 << 30)
	}
}

// TestByteBudgetZeroAndNegativeTakes: a take of zero or negative bytes
// is a no-op even on a tiny limited budget — it must neither sleep nor
// consume tokens.
func TestByteBudgetZeroAndNegativeTakes(t *testing.T) {
	clock := time.Unix(0, 0)
	var slept time.Duration
	b := fakeBudget(t, 1024, 1024, &clock, &slept)
	for i := 0; i < 1000; i++ {
		b.take(0)
		b.take(-4096)
	}
	if slept != 0 {
		t.Fatalf("no-op takes slept %v", slept)
	}
	// The burst is still intact: a full-burst take goes through free.
	b.take(1024)
	if slept != 0 {
		t.Fatalf("burst consumed by no-op takes (slept %v)", slept)
	}
}

// TestByteBudgetBurstAfterIdle is the token-cap edge case: a long idle
// period must not bank unbounded credit. After an hour of silence the
// bucket holds exactly one burst — the next burst is free, but the take
// after it pays the full deficit at the configured rate.
func TestByteBudgetBurstAfterIdle(t *testing.T) {
	const rate, burst = 1 << 20, 64 << 10
	clock := time.Unix(0, 0)
	var slept time.Duration
	b := fakeBudget(t, rate, burst, &clock, &slept)

	// Drain the initial burst, then idle for an hour.
	b.take(burst)
	if slept != 0 {
		t.Fatalf("initial burst slept %v", slept)
	}
	clock = clock.Add(time.Hour)

	// One burst of credit accrued — not an hour's worth (3.6GB).
	b.take(burst)
	if slept != 0 {
		t.Fatalf("post-idle burst slept %v, want free", slept)
	}
	b.take(burst)
	want := time.Duration(float64(burst) / rate * float64(time.Second))
	if slept < want-time.Millisecond || slept > want+time.Millisecond {
		t.Fatalf("second post-idle burst slept %v, want ~%v (idle banked extra credit)", slept, want)
	}
}

// TestByteBudgetFrozenClock: with a clock that never advances on its own
// (only sleeps move it), the budget must still pace correctly — total
// slept time for N bytes beyond the burst is exactly N/rate. This pins
// the sleep-refills-tokens contract the repair and migration engines
// rely on when they saturate the budget.
func TestByteBudgetFrozenClock(t *testing.T) {
	const rate, burst = 1 << 20, 32 << 10
	clock := time.Unix(0, 0)
	var slept time.Duration
	b := fakeBudget(t, rate, burst, &clock, &slept)

	total := 0
	for i := 0; i < 100; i++ {
		b.take(16 << 10)
		total += 16 << 10
	}
	want := time.Duration(float64(total-burst) / rate * float64(time.Second))
	if slept < want-time.Millisecond || slept > want+time.Millisecond {
		t.Fatalf("slept %v for %d bytes at %d B/s with %d burst, want ~%v", slept, total, rate, burst, want)
	}
}

// TestByteBudgetDefaultBurst: an unset burst defaults to 100ms of
// traffic, so a freshly constructed budget absorbs exactly rate/10 bytes
// before pacing kicks in.
func TestByteBudgetDefaultBurst(t *testing.T) {
	const rate = 10 << 20
	clock := time.Unix(0, 0)
	var slept time.Duration
	b := fakeBudget(t, rate, 0, &clock, &slept)

	b.take(rate / 10)
	if slept != 0 {
		t.Fatalf("default burst smaller than 100ms of traffic (slept %v)", slept)
	}
	b.take(1 << 10)
	if slept == 0 {
		t.Fatalf("take beyond the default burst did not pace")
	}
}
