package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"kona/internal/cllog"
	"kona/internal/telemetry"
)

// buildLog packs one 64-byte cache-line entry targeting pool offset off.
func buildLog(t testing.TB, off uint64, lineBytes int) []byte {
	t.Helper()
	entries := []cllog.Entry{{RemoteOff: off, Data: bytes.Repeat([]byte{3}, lineBytes)}}
	packed := make([]byte, cllog.PackedSize(entries))
	if _, err := cllog.Pack(entries, packed); err != nil {
		t.Fatal(err)
	}
	return packed
}

// countWriter counts bytes without buffering them — lets the frame-size
// edge tests run a maxFrameSize payload without holding two copies.
type countWriter struct{ n int }

func (w *countWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}

// TestEmptyPayloadVectors pins the empty-payload conventions: no
// payload, an empty scatter list, and a scatter list of empty segments
// all produce a payLen-0 frame that round-trips, and zero-length
// segments interleaved with real ones contribute nothing.
func TestEmptyPayloadVectors(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{nil},
		{nil, {}, nil},
	}
	for i, segs := range cases {
		var buf bytes.Buffer
		if _, err := writeRequestFrame(&buf, &Request{Kind: msgPing, ID: 7}, segs...); err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		out, err := decodeRequest(buf.Bytes())
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if out.Data != nil {
			t.Fatalf("case %d: empty payload decoded as %d bytes", i, len(out.Data))
		}
	}

	// Zero-length segments among real ones must neither ship bytes nor
	// desync the length accounting.
	var buf bytes.Buffer
	if _, err := writeRequestFrame(&buf, &Request{Kind: msgWrite},
		nil, []byte("ab"), []byte{}, []byte("cd"), nil); err != nil {
		t.Fatal(err)
	}
	out, err := decodeRequest(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "abcd" {
		t.Fatalf("interleaved empty segments corrupted payload: %q", out.Data)
	}
}

// TestPayloadAtMaxFrameSize pins the boundary: exactly maxFrameSize
// encodes and is accepted by the reader; one byte more fails fast on the
// send side before anything hits the wire, and a prefix claiming more is
// rejected by the reader.
func TestPayloadAtMaxFrameSize(t *testing.T) {
	payload := make([]byte, maxFrameSize)
	var w countWriter
	n, err := writeRequestFrame(&w, &Request{Kind: msgWriteLog}, payload)
	if err != nil {
		t.Fatalf("payload at limit rejected: %v", err)
	}
	if n != w.n || n < maxFrameSize+framePrefixLen {
		t.Fatalf("reported %d bytes, wrote %d", n, w.n)
	}

	var w2 countWriter
	if _, err := writeRequestFrame(&w2, &Request{Kind: msgWriteLog}, payload, []byte{0}); err == nil {
		t.Fatal("payload over limit accepted")
	}
	if w2.n != 0 {
		t.Fatalf("oversized frame leaked %d bytes onto the wire", w2.n)
	}

	// A frame prefix claiming an over-limit payload must be rejected
	// before any allocation.
	pre := []byte{frameMagic0, frameMagic1, frameVersion, kindPing, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	var scratch []byte
	if _, _, _, err := readFrameHeader(bytes.NewReader(pre), &scratch); err == nil {
		t.Fatal("length-bomb prefix accepted")
	}
}

// TestLegacyGobPeerRejected checks the version gate: a peer speaking the
// old gob framing fails the magic check with a descriptive error, and a
// kw frame with a different version number names both versions.
func TestLegacyGobPeerRejected(t *testing.T) {
	var legacy bytes.Buffer
	legacy.Write([]byte{0, 0, 0, 200}) // old 4-byte BE length prefix
	if err := gob.NewEncoder(&legacy).Encode(&Request{Kind: msgPing}); err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	_, _, _, err := readFrameHeader(&legacy, &scratch)
	if err == nil || !strings.Contains(err.Error(), "does not speak the kw wire protocol") {
		t.Fatalf("legacy gob frame: got %v, want magic-check rejection", err)
	}

	bad := []byte{frameMagic0, frameMagic1, frameVersion + 1, kindPing, 0, 0, 0, 0, 0, 0, 0, 0}
	_, _, _, err = readFrameHeader(bytes.NewReader(bad), &scratch)
	if err == nil || !strings.Contains(err.Error(), "wire version mismatch") {
		t.Fatalf("wrong version: got %v, want version-mismatch rejection", err)
	}

	// End to end: a client whose peer answers in the legacy framing gets
	// the magic-check error back from its round trip.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = io.CopyN(io.Discard, conn, 1) // wait for the request to start
		var resp bytes.Buffer
		resp.Write([]byte{0, 0, 0, 50})
		_ = gob.NewEncoder(&resp).Encode(&Response{})
		_, _ = conn.Write(resp.Bytes())
	}()
	_, err = roundTrip(l.Addr().String(), &Request{Kind: msgPing})
	if err == nil || !strings.Contains(err.Error(), "does not speak the kw wire protocol") {
		t.Fatalf("gob-era peer round trip: got %v, want magic-check rejection", err)
	}
}

// chokeWriter accepts at most limit bytes of each Write and then fails —
// the deterministic form of faultconn's mid-iovec partial write. Like
// faultConn it does not implement io.ReaderFrom, so net.Buffers falls
// back to one Write call per iovec.
type chokeWriter struct {
	w     io.Writer
	limit int
	fed   int
}

func (c *chokeWriter) Write(b []byte) (int, error) {
	if len(b) > c.limit {
		n, _ := c.w.Write(b[:c.limit])
		c.fed += n
		return n, fmt.Errorf("chokewriter: injected partial write")
	}
	n, err := c.w.Write(b)
	c.fed += n
	return n, err
}

// TestPartialVecWriteNoDesync drives a scatter-gather frame into a
// writer that fails mid-iovec (what a faultconn partial write does to a
// net.Buffers fallback loop) and checks both sides fail loudly: the
// writer reports an error with an accurate byte count, and a reader fed
// the truncated prefix reports truncation instead of inventing a frame.
func TestPartialVecWriteNoDesync(t *testing.T) {
	var wire bytes.Buffer
	cw := &chokeWriter{w: &wire, limit: framePrefixLen + 64} // dies inside the first payload segment
	n, err := writeRequestFrame(cw, &Request{Kind: msgWriteLog},
		bytes.Repeat([]byte{1}, 256), bytes.Repeat([]byte{2}, 256))
	if err == nil {
		t.Fatal("mid-iovec partial write reported success")
	}
	if n != cw.fed {
		t.Fatalf("writer reported %d bytes, wire carries %d", n, cw.fed)
	}

	var scratch []byte
	_, _, payLen, err := readFrameHeader(&wire, &scratch)
	if err != nil {
		// The choke landed inside the prefix/header: the reader calls
		// truncation, which is the loud failure we want.
		return
	}
	dst := make([]byte, payLen)
	if err := readPayloadInto(&wire, payLen, dst); err == nil {
		t.Fatal("reader filled a payload the writer never finished")
	}
}

// TestFaultConnPartialWritesEndToEnd runs scatter-gather RPCs through a
// fault listener injecting real mid-frame partial writes and checks the
// retry layer recovers every request with intact payloads — a split
// writev must only ever produce a dead connection, never a desynced one.
func TestFaultConnPartialWritesEndToEnd(t *testing.T) {
	node := NewMemoryNode(1, 1<<20)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(inner, FaultConfig{Seed: 42, PartialWriteProb: 0.3})
	srv := ServeMemoryNodeOn(node, fl)
	defer srv.Close()

	mc := DialMemoryNodeTransport(srv.Addr(), Transport{MaxRetries: 25, Seed: 7})
	defer mc.Close()

	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := mc.WriteVec(0, payload[:4096], payload[4096:]); err != nil {
		t.Fatalf("scatter write under partial-write faults: %v", err)
	}
	buf := make([]byte, len(payload))
	for i := 0; i < 25; i++ {
		for j := range buf {
			buf[j] = 0
		}
		if err := mc.ReadInto(0, buf); err != nil {
			t.Fatalf("read %d under partial-write faults: %v", i, err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("read %d returned corrupt data (stream desync?)", i)
		}
	}
	if fl.Faults() == 0 {
		t.Fatal("fault listener injected nothing; test proves nothing")
	}
}

// TestReadPagesIntoScatteredFrames checks a ReadPages reply lands
// correctly when the caller's destination frames are non-contiguous and
// out of order relative to each other in memory.
func TestReadPagesIntoScatteredFrames(t *testing.T) {
	node := NewMemoryNode(1, 1<<20)
	srv, err := ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mc := DialMemoryNode(srv.Addr())
	defer mc.Close()

	const page = 512
	offs := []uint64{3 * page, 0 * page, 7 * page, 1 * page}
	want := make([][]byte, len(offs))
	for i, off := range offs {
		want[i] = bytes.Repeat([]byte{byte(0x10 + i)}, page)
		if err := mc.Write(off, want[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Destination frames: disjoint slices of one arena with gaps between
	// them, assigned in reverse so adjacency never accidentally matches
	// the reply's concatenated layout.
	arena := make([]byte, len(offs)*2*page)
	bufs := make([][]byte, len(offs))
	for i := range bufs {
		start := (len(offs) - 1 - i) * 2 * page
		bufs[i] = arena[start : start+page]
	}
	if err := mc.ReadPagesInto(offs, bufs); err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("page %d landed wrong: got %x… want %x…", i, bufs[i][:4], want[i][:4])
		}
	}

	// Shape errors are caught client-side before anything ships.
	if err := mc.ReadPagesInto(offs, bufs[:2]); err == nil {
		t.Fatal("mismatched buffer count accepted")
	}
	if err := mc.ReadPagesInto(nil, nil); err == nil {
		t.Fatal("empty read-pages accepted")
	}
}

// TestOversizedWriteLogDrainsAndAnswers checks the drain path: a
// WriteLog payload larger than the node's log region is refused by the
// payload sink, but the connection stays framed — the server drains the
// body, answers with the error, and keeps serving on the same conn.
func TestOversizedWriteLogDrainsAndAnswers(t *testing.T) {
	node := NewMemoryNode(1, 1<<20)
	srv, err := ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	big := make([]byte, LogRegionSize+1)
	if _, err := writeRequestFrame(conn, &Request{Kind: msgWriteLog, ID: nextReqID()}, big); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if _, err := readResponseFrame(conn, &resp, nil); err != nil {
		t.Fatalf("oversized log tore the connection: %v", err)
	}
	if !strings.Contains(resp.Err, "log too large") {
		t.Fatalf("got %q, want log-too-large refusal", resp.Err)
	}
	// Same connection must still serve.
	if _, err := writeRequestFrame(conn, &Request{Kind: msgPing, ID: nextReqID()}); err != nil {
		t.Fatal(err)
	}
	if _, err := readResponseFrame(conn, &resp, nil); err != nil || resp.Err != "" {
		t.Fatalf("connection desynced after drained payload: %v %q", err, resp.Err)
	}
}

// TestWireTelemetryCounters checks the per-kind tx/rx byte counters and
// the payload_copies counters on both ends: the zero-copy paths
// (WriteLogVec, ReadInto) must leave payload_copies untouched while
// moving payload-sized wire volume; the legacy staging paths must count.
func TestWireTelemetryCounters(t *testing.T) {
	clientReg := telemetry.New(64)
	serverReg := telemetry.New(64)

	node := NewMemoryNode(1, 1<<20)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeMemoryNodeOnWith(node, inner, serverReg)
	defer srv.Close()
	mc := DialMemoryNodeTransport(srv.Addr(), Transport{Metrics: clientReg})
	defer mc.Close()

	// Zero-copy ship: a packed log in two segments.
	logA := buildLog(t, 0, 64)
	if _, err := mc.WriteLogVec(logA[:len(logA)/2], logA[len(logA)/2:]); err != nil {
		t.Fatal(err)
	}
	// Zero-copy receive into a caller frame.
	frame := make([]byte, 4096)
	if err := mc.ReadInto(0, frame); err != nil {
		t.Fatal(err)
	}

	if got := clientReg.Counter("cluster.rpc.tx_bytes." + msgWriteLog).Value(); got < uint64(len(logA)) {
		t.Fatalf("write-log tx_bytes %d, want >= payload %d", got, len(logA))
	}
	if got := clientReg.Counter("cluster.rpc.rx_bytes." + msgRead).Value(); got < uint64(len(frame)) {
		t.Fatalf("read rx_bytes %d, want >= payload %d", got, len(frame))
	}
	if got := serverReg.Counter("cluster.memnode.rx_bytes." + msgWriteLog).Value(); got < uint64(len(logA)) {
		t.Fatalf("server write-log rx_bytes %d, want >= payload %d", got, len(logA))
	}
	if got := clientReg.Counter("cluster.rpc.payload_copies").Value(); got != 0 {
		t.Fatalf("zero-copy client paths staged %d payload bytes", got)
	}
	// The server Read path stages through its pooled buffer (the pool is
	// locked per-access); WriteLog must not have added to it.
	serverCopies := serverReg.Counter("cluster.memnode.payload_copies").Value()
	if serverCopies != uint64(len(frame)) {
		t.Fatalf("server payload_copies %d, want %d (Read staging only)", serverCopies, len(frame))
	}

	// Legacy client Read allocates a staging buffer and counts it.
	if _, err := mc.Read(0, 256); err != nil {
		t.Fatal(err)
	}
	if got := clientReg.Counter("cluster.rpc.payload_copies").Value(); got != 256 {
		t.Fatalf("legacy Read staged %d bytes, want 256", got)
	}
}
