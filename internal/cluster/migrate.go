package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"kona/internal/mem"
	"kona/internal/slab"
	"kona/internal/telemetry"
)

// Live slab migration (DESIGN.md §13). The migration engine generalizes
// the repair engine's copy-then-flip: where repair copies a LOST member
// from a surviving replica, migration copies a LIVE member off a hot
// node while writers keep hitting it. Correctness against concurrent
// writes comes from the memnode's dirty capture and extent seal:
//
//	CaptureStart        — source records pages dirtied from here on
//	full copy           — budgeted, page-batched (repair's loop)
//	drain+copy deltas   — bounded passes until the dirty set runs dry
//	Seal                — writes to the old extent now fail loudly
//	final drain+copy    — the image is exact; nothing can change it
//	CommitMigration     — member flip + placement-epoch bump
//	CaptureStop         — and the old extent retires after a hold-down
//
// A write that lands before the seal is captured and re-copied; a write
// rejected by the seal comes back to the compute runtime as a sealed
// error, which retains the entries and triggers a placement refresh —
// the retained-entry remap then replays them onto the new extent under
// the suspect read fence. Either way no acknowledged write is lost or
// reordered. The old extent stays sealed for RetireSweeps sweeps before
// its memory is released, so any straggler writer still holding the old
// placement fails loudly instead of writing into a recycled window.

// NodeIDs returns the registered node ids, ascending.
func (c *Controller) NodeIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// SlabsOnNode returns the group members hosted on node at its current
// incarnation, ascending group id. Groups with any degraded member are
// skipped — repair owns those until they settle.
func (c *Controller) SlabsOnNode(node int) []slab.Slab {
	c.mu.Lock()
	defer c.mu.Unlock()
	inc := c.incarn[node]
	degradedGroup := make(map[uint64]bool, len(c.degraded))
	for k := range c.degraded {
		degradedGroup[k.group] = true
	}
	var out []slab.Slab
	for gid, members := range c.groups {
		if degradedGroup[gid] {
			continue
		}
		for _, m := range members {
			if m.Node == node && m.Epoch == inc {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CarveMigrationTarget picks the coldest node not already holding a
// member of src's group and carves a same-size extent there. src must
// still be a current member at its carved incarnation. Migration targets
// always use load order — rebalancing onto a random node defeats the
// point — with the id tie-break keeping the choice deterministic.
func (c *Controller) CarveMigrationTarget(src slab.Slab) (slab.Slab, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	members := c.groups[src.ID]
	found := false
	occupied := make(map[int]bool, len(members))
	for _, m := range members {
		occupied[m.Node] = true
		if m.Node == src.Node && m.RemoteOff == src.RemoteOff && m.Epoch == src.Epoch {
			found = true
		}
	}
	if !found {
		return slab.Slab{}, fmt.Errorf("controller: group %d member on node %d vanished", src.ID, src.Node)
	}
	if _, deg := c.degraded[degradedKey{group: src.ID, node: src.Node}]; deg {
		return slab.Slab{}, fmt.Errorf("controller: group %d/node %d is degraded; repair owns it", src.ID, src.Node)
	}
	for _, id := range c.loadOrderLocked() {
		if occupied[id] {
			continue
		}
		n := c.nodes[id]
		if n.Failed() {
			continue
		}
		off, err := n.CarveSlab(src.Size)
		if err != nil {
			continue
		}
		return slab.Slab{
			ID:        src.ID,
			Base:      src.Base,
			Size:      src.Size,
			Node:      id,
			RemoteKey: n.PoolKey(),
			RemoteOff: off,
			Epoch:     c.incarn[id],
		}, nil
	}
	return slab.Slab{}, fmt.Errorf("controller: no migration target for group %d (source node %d)", src.ID, src.Node)
}

// CommitMigration atomically flips the src member to the freshly copied
// dst and bumps the placement epoch. It fails — and the caller must
// AbandonMigration(dst) — if src is no longer a member (repair or a
// racing migration got there first), src's node became degraded, or the
// target died or changed incarnation during the copy.
func (c *Controller) CommitMigration(src, dst slab.Slab) error {
	err := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, deg := c.degraded[degradedKey{group: src.ID, node: src.Node}]; deg {
			return fmt.Errorf("controller: group %d/node %d degraded during migration", src.ID, src.Node)
		}
		n, ok := c.nodes[dst.Node]
		if !ok || c.incarn[dst.Node] != dst.Epoch {
			return fmt.Errorf("controller: migration target node %d (epoch %d) gone", dst.Node, dst.Epoch)
		}
		if n.Failed() {
			return fmt.Errorf("controller: migration target node %d failed during copy", dst.Node)
		}
		members := c.groups[src.ID]
		for i := range members {
			m := &members[i]
			if m.Node == src.Node && m.RemoteOff == src.RemoteOff && m.Epoch == src.Epoch {
				*m = dst
				c.epoch++
				return nil
			}
		}
		return fmt.Errorf("controller: group %d member on node %d vanished during migration", src.ID, src.Node)
	}()
	if err != nil {
		return err
	}
	// Leases survive the flip: re-arm the writer fence on the new extent
	// (the retired source keeps its seal through the hold-down, which
	// fences everyone anyway). Outside c.mu — leaseMu is the outer lock.
	c.refenceMember(dst)
	return nil
}

// AbandonMigration returns a carved-but-unflipped target extent (or a
// retired source extent) to its node, if that node is still around at
// the same incarnation. Releasing through the node also clears any seal
// or capture left on the extent.
func (c *Controller) AbandonMigration(s slab.Slab) {
	c.mu.Lock()
	n, ok := c.nodes[s.Node]
	live := ok && c.incarn[s.Node] == s.Epoch
	c.mu.Unlock()
	if live {
		n.ReleaseSlab(s.RemoteOff, s.Size)
	}
}

// MigrationTransport extends the repair transport with the source-side
// capture and seal controls a live copy needs.
type MigrationTransport interface {
	RepairTransport
	CaptureStart(node int, epoch uint64, off, size, pageLen uint64) error
	CaptureDrain(node int, epoch uint64, off, size uint64) ([]uint64, error)
	CaptureStop(node int, epoch uint64, off, size uint64) error
	Seal(node int, epoch uint64, off, size uint64) error
	Unseal(node int, epoch uint64, off, size uint64) error
}

// MigrationConfig tunes the load-driven rebalancer.
type MigrationConfig struct {
	// BytesPerSec caps migration copy traffic (<= 0: unlimited), sharing
	// the same token-bucket discipline as repair.
	BytesPerSec float64
	// BatchPages is pages per ReadPages RPC (default 16).
	BatchPages int
	// PageSize is the copy/capture granularity (default mem.PageSize).
	PageSize int
	// Interval is the Run loop's sweep period (default 200ms).
	Interval time.Duration
	// HotRatio triggers a move when the hottest node's score exceeds
	// HotRatio times the coldest's (default 2.0).
	HotRatio float64
	// MinScore is the hot-node score floor below which the rack is
	// considered idle and nothing moves (default 1).
	MinScore float64
	// MaxMovesPerSweep bounds migrations per sweep (default 1).
	MaxMovesPerSweep int
	// MaxDrainPasses bounds pre-seal delta copies before sealing anyway
	// (default 8) — a writer hotter than the copy budget must not stall
	// the migration forever.
	MaxDrainPasses int
	// RetireSweeps is how many sweeps the old extent stays sealed before
	// its memory is released (default 4).
	RetireSweeps int
	// PullLoads, when set, scrapes in-process node counters into the
	// load map at each sweep — the sim-mode feed. TCP daemons leave it
	// off and rely on memnode push reports.
	PullLoads bool
	// Metrics, if set, receives cluster.migrate.* counters and gauges.
	Metrics *telemetry.Registry
}

func (c MigrationConfig) withDefaults() MigrationConfig {
	if c.BatchPages <= 0 {
		c.BatchPages = 16
	}
	if c.PageSize <= 0 {
		c.PageSize = int(mem.PageSize)
	}
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.HotRatio <= 1 {
		c.HotRatio = 2.0
	}
	if c.MinScore <= 0 {
		c.MinScore = 1
	}
	if c.MaxMovesPerSweep <= 0 {
		c.MaxMovesPerSweep = 1
	}
	if c.MaxDrainPasses <= 0 {
		c.MaxDrainPasses = 8
	}
	if c.RetireSweeps <= 0 {
		c.RetireSweeps = 4
	}
	return c
}

// MigrationStats is a snapshot of the engine's lifetime work.
type MigrationStats struct {
	// Moves counts committed migrations (member flipped).
	Moves uint64
	// Failures counts abandoned migration attempts.
	Failures uint64
	// BytesCopied is the total page payload moved (full copy + deltas).
	BytesCopied uint64
	// DeltaPages counts pages re-copied from capture drains.
	DeltaPages uint64
	// Retired counts old extents whose hold-down expired and whose
	// memory was released.
	Retired uint64
}

// retiringExtent is one flipped-out source extent in its sealed
// hold-down.
type retiringExtent struct {
	s      slab.Slab
	sweeps int
}

// MigrationEngine is the controller-side load-driven rebalancer: each
// sweep it refreshes the load map, picks the hottest and coldest nodes,
// and if the imbalance clears HotRatio, live-migrates one slab from hot
// to cold under the byte budget.
type MigrationEngine struct {
	ctrl   *Controller
	tr     MigrationTransport
	cfg    MigrationConfig
	budget *byteBudget

	moves, failures, bytesCopied, deltaPages, retiredCount atomic.Uint64

	retiring []retiringExtent

	mMoves    *telemetry.Counter
	mFailures *telemetry.Counter
	mBytes    *telemetry.Counter
	mDelta    *telemetry.Counter
	mRetired  *telemetry.Counter
	mRetiring *telemetry.Gauge
}

// NewMigrationEngine wires an engine to a controller and a transport.
func NewMigrationEngine(ctrl *Controller, tr MigrationTransport, cfg MigrationConfig) *MigrationEngine {
	cfg = cfg.withDefaults()
	e := &MigrationEngine{
		ctrl:   ctrl,
		tr:     tr,
		cfg:    cfg,
		budget: newByteBudget(cfg.BytesPerSec, 0),
	}
	if cfg.Metrics != nil {
		e.mMoves = cfg.Metrics.Counter("cluster.migrate.moves")
		e.mFailures = cfg.Metrics.Counter("cluster.migrate.failures")
		e.mBytes = cfg.Metrics.Counter("cluster.migrate.bytes_copied")
		e.mDelta = cfg.Metrics.Counter("cluster.migrate.delta_pages")
		e.mRetired = cfg.Metrics.Counter("cluster.migrate.retired")
		e.mRetiring = cfg.Metrics.Gauge("cluster.migrate.retiring")
	}
	return e
}

// Stats returns the engine's lifetime counters.
func (e *MigrationEngine) Stats() MigrationStats {
	return MigrationStats{
		Moves:       e.moves.Load(),
		Failures:    e.failures.Load(),
		BytesCopied: e.bytesCopied.Load(),
		DeltaPages:  e.deltaPages.Load(),
		Retired:     e.retiredCount.Load(),
	}
}

// SweepOnce runs one rebalance pass: age retirements, then migrate up to
// MaxMovesPerSweep slabs off the hottest node if the imbalance clears
// the trigger. It returns the number of committed moves.
func (e *MigrationEngine) SweepOnce() int {
	if e.cfg.PullLoads {
		e.ctrl.PullNodeLoads()
	}
	e.ageRetirements()
	moves := 0
	for i := 0; i < e.cfg.MaxMovesPerSweep; i++ {
		src, ok := e.pickMove()
		if !ok {
			break
		}
		if err := e.migrateOne(src); err != nil {
			break
		}
		moves++
	}
	if e.mRetiring != nil {
		e.mRetiring.Set(int64(len(e.retiring)))
	}
	return moves
}

// pickMove selects the slab to migrate: the lowest-id group member on
// the hottest node, when that node's score clears both the MinScore
// floor and HotRatio times the coldest node's score.
func (e *MigrationEngine) pickMove() (slab.Slab, bool) {
	ids := e.ctrl.NodeIDs()
	if len(ids) < 2 {
		return slab.Slab{}, false
	}
	scores := make(map[int]float64, len(ids))
	for _, nl := range e.ctrl.LoadMap() {
		scores[nl.Node] = nl.Score + float64(nl.Pending)
	}
	hot, cold := ids[0], ids[0]
	for _, id := range ids[1:] {
		if scores[id] > scores[hot] {
			hot = id
		}
		if scores[id] < scores[cold] {
			cold = id
		}
	}
	if hot == cold || scores[hot] < e.cfg.MinScore || scores[hot] < e.cfg.HotRatio*scores[cold] {
		return slab.Slab{}, false
	}
	for _, s := range e.ctrl.SlabsOnNode(hot) {
		return s, true
	}
	return slab.Slab{}, false
}

// migrateOne live-migrates one member: capture, copy, drain deltas,
// seal, final drain, flip, retire.
func (e *MigrationEngine) migrateOne(src slab.Slab) (err error) {
	target, err := e.ctrl.CarveMigrationTarget(src)
	if err != nil {
		return err
	}
	pageLen := uint64(e.cfg.PageSize)
	sealed := false
	defer func() {
		if err == nil {
			return
		}
		// Unwind: lift the seal so writers resume against the still-
		// current member, drop the capture, give the target back.
		if sealed {
			_ = e.tr.Unseal(src.Node, src.Epoch, src.RemoteOff, src.Size)
		}
		_ = e.tr.CaptureStop(src.Node, src.Epoch, src.RemoteOff, src.Size)
		e.ctrl.AbandonMigration(target)
		e.failures.Add(1)
		if e.mFailures != nil {
			e.mFailures.Inc()
		}
	}()
	if err = e.tr.CaptureStart(src.Node, src.Epoch, src.RemoteOff, src.Size, pageLen); err != nil {
		return err
	}
	onCopied := func(n uint64) {
		e.bytesCopied.Add(n)
		if e.mBytes != nil {
			e.mBytes.Add(n)
		}
	}
	if err = copyExtentBudgeted(e.tr, e.budget, e.cfg.BatchPages, pageLen, src, target, onCopied); err != nil {
		return err
	}
	// Chase the dirty set down before sealing: each pass re-copies the
	// pages written during the previous one. Bounded — a writer outrunning
	// the budget converges at the seal instead.
	for pass := 0; pass < e.cfg.MaxDrainPasses; pass++ {
		var offs []uint64
		if offs, err = e.tr.CaptureDrain(src.Node, src.Epoch, src.RemoteOff, src.Size); err != nil {
			return err
		}
		if len(offs) == 0 {
			break
		}
		if err = e.copyDelta(src, target, offs); err != nil {
			return err
		}
	}
	if err = e.tr.Seal(src.Node, src.Epoch, src.RemoteOff, src.Size); err != nil {
		return err
	}
	sealed = true
	// Final delta under the seal: nothing can dirty the extent now, so
	// after this copy the target is an exact image.
	var offs []uint64
	if offs, err = e.tr.CaptureDrain(src.Node, src.Epoch, src.RemoteOff, src.Size); err != nil {
		return err
	}
	if err = e.copyDelta(src, target, offs); err != nil {
		return err
	}
	if err = e.ctrl.CommitMigration(src, target); err != nil {
		return err
	}
	_ = e.tr.CaptureStop(src.Node, src.Epoch, src.RemoteOff, src.Size)
	// The old extent stays sealed through its hold-down; release comes
	// in a later sweep.
	e.retiring = append(e.retiring, retiringExtent{s: src, sweeps: e.cfg.RetireSweeps})
	e.moves.Add(1)
	if e.mMoves != nil {
		e.mMoves.Inc()
	}
	return nil
}

// copyDelta re-copies the captured dirty pages (absolute source-pool
// offsets) onto their homes in the target extent.
func (e *MigrationEngine) copyDelta(src, dst slab.Slab, offs []uint64) error {
	pageLen := uint64(e.cfg.PageSize)
	for start := 0; start < len(offs); start += e.cfg.BatchPages {
		end := start + e.cfg.BatchPages
		if end > len(offs) {
			end = len(offs)
		}
		batch := offs[start:end]
		e.budget.take(len(batch) * int(pageLen))
		pages, err := e.tr.ReadPages(src.Node, src.Epoch, batch, int(pageLen))
		if err != nil {
			return fmt.Errorf("migrate: delta read from node %d: %w", src.Node, err)
		}
		for i, off := range batch {
			page := pages[i]
			// Clamp the tail page to the extent: capture is page-granular
			// but the extent need not be page-aligned in length.
			if rem := src.RemoteOff + src.Size - off; rem < uint64(len(page)) {
				page = page[:rem]
			}
			dstOff := dst.RemoteOff + (off - src.RemoteOff)
			if err := e.tr.Write(dst.Node, dst.Epoch, dstOff, [][]byte{page}); err != nil {
				return fmt.Errorf("migrate: delta write to node %d: %w", dst.Node, err)
			}
		}
		n := uint64(len(batch)) * pageLen
		e.bytesCopied.Add(n)
		e.deltaPages.Add(uint64(len(batch)))
		if e.mBytes != nil {
			e.mBytes.Add(n)
		}
		if e.mDelta != nil {
			e.mDelta.Add(uint64(len(batch)))
		}
	}
	return nil
}

// ageRetirements counts down each flipped-out extent's sealed hold-down
// and releases the ones that expire: unseal on the daemon (straggler
// writers have had RetireSweeps sweeps to refresh), then give the
// memory back through the controller's node mirror.
func (e *MigrationEngine) ageRetirements() {
	kept := e.retiring[:0]
	for _, r := range e.retiring {
		r.sweeps--
		if r.sweeps > 0 {
			kept = append(kept, r)
			continue
		}
		_ = e.tr.Unseal(r.s.Node, r.s.Epoch, r.s.RemoteOff, r.s.Size)
		e.ctrl.AbandonMigration(r.s)
		e.retiredCount.Add(1)
		if e.mRetired != nil {
			e.mRetired.Inc()
		}
	}
	e.retiring = kept
}

// Run sweeps every Interval until stop closes — the daemon's background
// rebalance loop.
func (e *MigrationEngine) Run(stop <-chan struct{}) {
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.SweepOnce()
		}
	}
}

// copyExtentBudgeted streams [src.RemoteOff, +Size) onto dst in
// rate-limited batches: full pages through the batched ReadPages RPC
// plus one smaller read for a non-page-aligned tail. Shared by the
// repair and migration engines.
func copyExtentBudgeted(tr RepairTransport, budget *byteBudget, batchPages int, pageLen uint64, src, dst slab.Slab, onCopied func(uint64)) error {
	copyBatch := func(start uint64, offs []uint64, spanLen int) error {
		span := uint64(len(offs)-1)*pageLen + uint64(spanLen)
		budget.take(int(span))
		pages, err := tr.ReadPages(src.Node, src.Epoch, offs, spanLen)
		if err != nil {
			return fmt.Errorf("copy: read from node %d: %w", src.Node, err)
		}
		// The page buffers go to the transport as a scatter list; the TCP
		// path writev's them straight onto the wire.
		if err := tr.Write(dst.Node, dst.Epoch, dst.RemoteOff+start, pages); err != nil {
			return fmt.Errorf("copy: write to node %d: %w", dst.Node, err)
		}
		if onCopied != nil {
			onCopied(span)
		}
		return nil
	}
	fullPages := src.Size / pageLen
	offs := make([]uint64, 0, batchPages)
	for p := uint64(0); p < fullPages; {
		offs = offs[:0]
		start := p * pageLen
		for len(offs) < batchPages && p < fullPages {
			offs = append(offs, src.RemoteOff+p*pageLen)
			p++
		}
		if err := copyBatch(start, offs, int(pageLen)); err != nil {
			return err
		}
	}
	if rem := src.Size % pageLen; rem > 0 {
		start := fullPages * pageLen
		if err := copyBatch(start, []uint64{src.RemoteOff + start}, int(rem)); err != nil {
			return err
		}
	}
	return nil
}

// LocalMigrationTransport drives in-process MemoryNodes directly — the
// simulated fabric's migration path.
type LocalMigrationTransport struct {
	LocalRepairTransport
}

// NewLocalMigrationTransport returns a transport over ctrl's registered
// nodes.
func NewLocalMigrationTransport(ctrl *Controller) *LocalMigrationTransport {
	return &LocalMigrationTransport{LocalRepairTransport{Ctrl: ctrl}}
}

func (t *LocalMigrationTransport) CaptureStart(node int, epoch uint64, off, size, pageLen uint64) error {
	n, err := t.node(node, epoch)
	if err != nil {
		return err
	}
	n.StartCapture(off, size, pageLen)
	return nil
}

func (t *LocalMigrationTransport) CaptureDrain(node int, epoch uint64, off, size uint64) ([]uint64, error) {
	n, err := t.node(node, epoch)
	if err != nil {
		return nil, err
	}
	return n.DrainCapture(off, size), nil
}

func (t *LocalMigrationTransport) CaptureStop(node int, epoch uint64, off, size uint64) error {
	n, err := t.node(node, epoch)
	if err != nil {
		return err
	}
	n.StopCapture(off, size)
	return nil
}

func (t *LocalMigrationTransport) Seal(node int, epoch uint64, off, size uint64) error {
	n, err := t.node(node, epoch)
	if err != nil {
		return err
	}
	n.Seal(off, size)
	return nil
}

func (t *LocalMigrationTransport) Unseal(node int, epoch uint64, off, size uint64) error {
	n, err := t.node(node, epoch)
	if err != nil {
		return err
	}
	n.Unseal(off, size)
	return nil
}

// TCPMigrationTransport drives memnode daemons over the wire protocol.
// The controller's registered MemoryNode objects are only capacity
// mirrors in TCP mode; seal and capture state must live on the daemon's
// real node, so every control goes out as an RPC.
type TCPMigrationTransport struct {
	TCPRepairTransport
}

// NewTCPMigrationTransport returns a transport resolving node addresses
// through addr (typically ControllerServer.NodeAddr).
func NewTCPMigrationTransport(addr func(node int) (string, bool), tr Transport) *TCPMigrationTransport {
	return &TCPMigrationTransport{TCPRepairTransport{Addr: addr, Transport: tr}}
}

func (t *TCPMigrationTransport) control(node int, epoch uint64) (*MemoryNodeClient, error) {
	c, err := t.client(node)
	if err != nil {
		return nil, err
	}
	c.SetEpoch(epoch)
	return c, nil
}

func (t *TCPMigrationTransport) CaptureStart(node int, epoch uint64, off, size, pageLen uint64) error {
	c, err := t.control(node, epoch)
	if err != nil {
		return err
	}
	return c.CaptureStart(off, size, pageLen)
}

func (t *TCPMigrationTransport) CaptureDrain(node int, epoch uint64, off, size uint64) ([]uint64, error) {
	c, err := t.control(node, epoch)
	if err != nil {
		return nil, err
	}
	return c.CaptureDrain(off, size)
}

func (t *TCPMigrationTransport) CaptureStop(node int, epoch uint64, off, size uint64) error {
	c, err := t.control(node, epoch)
	if err != nil {
		return err
	}
	return c.CaptureStop(off, size)
}

func (t *TCPMigrationTransport) Seal(node int, epoch uint64, off, size uint64) error {
	c, err := t.control(node, epoch)
	if err != nil {
		return err
	}
	return c.Seal(off, size)
}

func (t *TCPMigrationTransport) Unseal(node int, epoch uint64, off, size uint64) error {
	c, err := t.control(node, epoch)
	if err != nil {
		return err
	}
	return c.Unseal(off, size)
}
