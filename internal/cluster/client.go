package cluster

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"kona/internal/slab"
)

// ControllerClient talks to a remote controller daemon over pooled
// persistent connections. Safe for concurrent use.
type ControllerClient struct {
	pool *pool
}

// DialController returns a client for the controller at addr with the
// default transport policy. No connection is made until the first RPC.
func DialController(addr string) *ControllerClient {
	return DialControllerTransport(addr, DefaultTransport())
}

// DialControllerTransport returns a controller client with an explicit
// wire policy (timeouts, retries, pool size).
func DialControllerTransport(addr string, tr Transport) *ControllerClient {
	return &ControllerClient{pool: newPool(addr, tr)}
}

// Close releases the client's pooled connections.
func (c *ControllerClient) Close() error { return c.pool.Close() }

// RegisterNode announces a memory node's capacity and TCP address.
func (c *ControllerClient) RegisterNode(id int, capacity uint64, nodeAddr string) error {
	_, err := c.RegisterNodeEpoch(id, capacity, nodeAddr)
	return err
}

// RegisterNodeEpoch is RegisterNode returning the incarnation the
// controller assigned to this node instance — a rejoining daemon adopts
// it so its epoch fence rejects pre-crash placements.
func (c *ControllerClient) RegisterNodeEpoch(id int, capacity uint64, nodeAddr string) (uint64, error) {
	resp, err := c.pool.roundTrip(&Request{
		Kind: msgRegisterNode, NodeID: id, Capacity: capacity, Addr: nodeAddr,
	})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// SlabPlacements returns a placement group's current members and the
// node address map — the compute-side refresh after a repair flip.
func (c *ControllerClient) SlabPlacements(group uint64) ([]slab.Slab, map[int]string, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgSlabPlacements, SlabID: group})
	if err != nil {
		return nil, nil, err
	}
	return resp.Slabs, resp.Addrs, nil
}

// ReportFailure tells the controller a node's log ships keep failing.
// The controller probes the node itself before expelling it; the return
// reports whether it was removed.
func (c *ControllerClient) ReportFailure(node int) (bool, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgReportFailure, NodeID: node})
	if err != nil {
		return false, err
	}
	return resp.Entries == 1, nil
}

// ReportLoad pushes one load sample for node into the controller's load
// map (memnode daemons send their cumulative counters each interval;
// compute runtimes send pending-byte gauges).
func (c *ControllerClient) ReportLoad(node int, s LoadSample) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgReportLoad, NodeID: node,
		Data: appendLoadSample(make([]byte, 0, loadSampleWireSize), s),
	})
	return err
}

// Epoch returns the controller's placement epoch (advances on every
// register, remove and repair flip).
func (c *ControllerClient) Epoch() (uint64, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgPing})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// AllocSlab requests one slab and returns it with the hosting node's
// address. Retried transparently: the request ID lets the controller
// deduplicate replays, so a lost response cannot leak a slab.
func (c *ControllerClient) AllocSlab(size uint64) (slab.Slab, string, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgAllocSlab, Size: size})
	if err != nil {
		return slab.Slab{}, "", err
	}
	if len(resp.Slabs) != 1 {
		return slab.Slab{}, "", fmt.Errorf("cluster: controller returned %d slabs", len(resp.Slabs))
	}
	s := resp.Slabs[0]
	return s, resp.Addrs[s.Node], nil
}

// AllocReplicatedSlab requests a slab placed on `replicas` distinct nodes.
func (c *ControllerClient) AllocReplicatedSlab(size uint64, replicas int) ([]slab.Slab, map[int]string, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgAllocSlab, Size: size, Replicas: replicas})
	if err != nil {
		return nil, nil, err
	}
	return resp.Slabs, resp.Addrs, nil
}

// ReleaseSlab returns a slab's memory to its node.
func (c *ControllerClient) ReleaseSlab(s slab.Slab) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgReleaseSlab, NodeID: s.Node, Offset: s.RemoteOff, Size: s.Size,
	})
	return err
}

// NodeAddrs returns the controller's current node-id -> TCP address map.
func (c *ControllerClient) NodeAddrs() (map[int]string, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgNodeAddr})
	if err != nil {
		return nil, err
	}
	return resp.Addrs, nil
}

// Ping checks liveness.
func (c *ControllerClient) Ping() error {
	_, err := c.pool.roundTrip(&Request{Kind: msgPing})
	return err
}

// decodeLeaseGrant unpacks a lease response: Epoch in the envelope,
// [version][ttl ns] in the payload.
func decodeLeaseGrant(resp *Response) (LeaseGrant, error) {
	if len(resp.Data) != 16 {
		return LeaseGrant{}, fmt.Errorf("cluster: lease response payload is %d bytes, want 16", len(resp.Data))
	}
	return LeaseGrant{
		Epoch:   resp.Epoch,
		Version: binary.BigEndian.Uint64(resp.Data),
		TTL:     time.Duration(binary.BigEndian.Uint64(resp.Data[8:])),
	}, nil
}

// AcquireLease requests a reader (LeaseReader) or writer (LeaseWriter)
// lease on a placement group for the given runtime identity. ttl 0 asks
// for the controller's default. A conflicting writer acquire fails with
// an error matching IsLeaseConflictErr.
func (c *ControllerClient) AcquireLease(group, runtime uint64, mode int, ttl time.Duration) (LeaseGrant, error) {
	resp, err := c.pool.roundTrip(&Request{
		Kind: msgLeaseAcquire, SlabID: group, Runtime: runtime, Length: mode, Size: uint64(ttl),
	})
	if err != nil {
		return LeaseGrant{}, err
	}
	return decodeLeaseGrant(resp)
}

// RenewLease extends an existing lease; a reader renew's returned Version
// is the invalidation signal (drop cached pages when it advances).
func (c *ControllerClient) RenewLease(group, runtime uint64, mode int, ttl time.Duration) (LeaseGrant, error) {
	resp, err := c.pool.roundTrip(&Request{
		Kind: msgLeaseRenew, SlabID: group, Runtime: runtime, Length: mode, Size: uint64(ttl),
	})
	if err != nil {
		return LeaseGrant{}, err
	}
	return decodeLeaseGrant(resp)
}

// ReleaseLease drops every lease the runtime holds on the group.
func (c *ControllerClient) ReleaseLease(group, runtime uint64) error {
	_, err := c.pool.roundTrip(&Request{Kind: msgLeaseRelease, SlabID: group, Runtime: runtime})
	return err
}

// PublishLease bumps the group's version after the writer has flushed —
// the invalidation readers observe on their next renew.
func (c *ControllerClient) PublishLease(group, runtime uint64) (LeaseGrant, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgLeaseInvalidate, SlabID: group, Runtime: runtime})
	if err != nil {
		return LeaseGrant{}, err
	}
	return decodeLeaseGrant(resp)
}

// MemoryNodeClient talks to a remote memory-node daemon over pooled
// persistent connections. Safe for concurrent use.
type MemoryNodeClient struct {
	pool *pool
	// epoch, when nonzero, stamps every data RPC with the node
	// incarnation the client believes it is talking to; a restarted node
	// rejects mismatches (epoch fencing, DESIGN.md §10).
	epoch atomic.Uint64
	// runtime, when nonzero, stamps writes with the calling runtime's
	// lease identity; a lease-fenced extent rejects writes from anyone
	// but the fence holder (§14).
	runtime atomic.Uint64
}

// SetEpoch sets the incarnation stamp for subsequent data RPCs (0
// disables fencing).
func (c *MemoryNodeClient) SetEpoch(epoch uint64) { c.epoch.Store(epoch) }

// SetRuntime sets the lease-identity stamp for subsequent writes (0
// means no identity — fenced extents reject such writes).
func (c *MemoryNodeClient) SetRuntime(id uint64) { c.runtime.Store(id) }

// DialMemoryNode returns a client for the node at addr with the default
// transport policy.
func DialMemoryNode(addr string) *MemoryNodeClient {
	return DialMemoryNodeTransport(addr, DefaultTransport())
}

// DialMemoryNodeTransport returns a memory-node client with an explicit
// wire policy.
func DialMemoryNodeTransport(addr string, tr Transport) *MemoryNodeClient {
	return &MemoryNodeClient{pool: newPool(addr, tr)}
}

// Close releases the client's pooled connections.
func (c *MemoryNodeClient) Close() error { return c.pool.Close() }

// Read fetches length bytes at offset from the node's pool into a fresh
// buffer. Callers that own the destination (a page frame) should use
// ReadInto, which lands the reply there without the staging allocation.
func (c *MemoryNodeClient) Read(offset uint64, length int) ([]byte, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgRead, Offset: offset, Length: length, Epoch: c.epoch.Load()})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// ReadInto fetches len(buf) bytes at offset directly into buf: the reply
// payload is read off the socket straight into the caller's memory — no
// intermediate buffer, no copy.
func (c *MemoryNodeClient) ReadInto(offset uint64, buf []byte) error {
	_, err := c.pool.roundTripIO(
		&Request{Kind: msgRead, Offset: offset, Length: len(buf), Epoch: c.epoch.Load()},
		nil, [][]byte{buf})
	return err
}

// ReadPages gathers one span of `length` bytes at each of the given pool
// offsets in a single round trip — the scatter-gather read the prefetcher
// and bulk-replay paths use to avoid one RPC per page. The returned
// slices alias one contiguous response buffer, in request order.
func (c *MemoryNodeClient) ReadPages(offsets []uint64, length int) ([][]byte, error) {
	resp, err := c.pool.roundTrip(&Request{Kind: msgReadPages, Offsets: offsets, Length: length, Epoch: c.epoch.Load()})
	if err != nil {
		return nil, err
	}
	if len(resp.Data) != length*len(offsets) {
		return nil, fmt.Errorf("cluster: read-pages returned %d bytes, want %d",
			len(resp.Data), length*len(offsets))
	}
	pages := make([][]byte, len(offsets))
	for i := range pages {
		pages[i] = resp.Data[i*length : (i+1)*length]
	}
	return pages, nil
}

// ReadPagesInto is ReadPages with the reply scattered directly into the
// caller's buffers — typically non-contiguous page frames — one per
// offset, all the same length. The concatenated reply payload is read
// off the socket segment by segment into bufs in request order; nothing
// is staged or copied.
func (c *MemoryNodeClient) ReadPagesInto(offsets []uint64, bufs [][]byte) error {
	if len(bufs) != len(offsets) {
		return fmt.Errorf("cluster: read-pages: %d offsets but %d buffers", len(offsets), len(bufs))
	}
	if len(bufs) == 0 {
		return fmt.Errorf("cluster: empty read-pages request")
	}
	length := len(bufs[0])
	for _, b := range bufs {
		if len(b) != length {
			return fmt.Errorf("cluster: read-pages buffers must be equal length")
		}
	}
	_, err := c.pool.roundTripIO(
		&Request{Kind: msgReadPages, Offsets: offsets, Length: length, Epoch: c.epoch.Load()},
		nil, bufs)
	return err
}

// Write stores data at offset in the node's pool. A write is a pure
// overwrite, so the transport may retry it after a connection fault.
func (c *MemoryNodeClient) Write(offset uint64, data []byte) error {
	return c.WriteVec(offset, data)
}

// WriteVec stores the concatenation of segs at offset in the node's
// pool. Each segment becomes one writev iovec shipped straight from the
// caller's buffer — the repair engine uses this to forward a slab's page
// images without first gluing them into one contiguous allocation.
func (c *MemoryNodeClient) WriteVec(offset uint64, segs ...[]byte) error {
	_, err := c.pool.roundTripIO(
		&Request{Kind: msgWrite, Offset: offset, Epoch: c.epoch.Load(), Runtime: c.runtime.Load()},
		segs, nil)
	return err
}

// WriteLog ships a packed cache-line log and returns the number of entries
// the receiver applied. Log application is not idempotent at the receiver
// (it counts entries), so the transport does not retry it; the eviction
// layer decides whether to replay.
func (c *MemoryNodeClient) WriteLog(packed []byte) (int, error) {
	return c.WriteLogVec(packed)
}

// WriteLogVec is WriteLog taking the packed log as scatter segments:
// each segment goes from its arena to the kernel as one writev iovec,
// and the receiver lands the whole payload directly in its log region —
// zero copies on either side of the wire.
func (c *MemoryNodeClient) WriteLogVec(segs ...[]byte) (int, error) {
	resp, err := c.pool.roundTripIO(
		&Request{Kind: msgWriteLog, Epoch: c.epoch.Load(), Runtime: c.runtime.Load()}, segs, nil)
	if err != nil {
		return 0, err
	}
	return resp.Entries, nil
}

// Ping checks liveness.
func (c *MemoryNodeClient) Ping() error {
	_, err := c.pool.roundTrip(&Request{Kind: msgPing})
	return err
}

// CaptureStart begins dirty-page capture on [off, off+size) at pageLen
// granularity (migration engine, DESIGN.md §13).
func (c *MemoryNodeClient) CaptureStart(off, size, pageLen uint64) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgCaptureStart, Offset: off, Size: size, Length: int(pageLen), Epoch: c.epoch.Load(),
	})
	return err
}

// CaptureDrain returns (and clears) the page offsets dirtied in the
// captured extent since the capture started or was last drained. The
// offsets travel as 8-byte big-endian values in the response payload.
func (c *MemoryNodeClient) CaptureDrain(off, size uint64) ([]uint64, error) {
	resp, err := c.pool.roundTrip(&Request{
		Kind: msgCaptureDrain, Offset: off, Size: size, Epoch: c.epoch.Load(),
	})
	if err != nil {
		return nil, err
	}
	if len(resp.Data)%8 != 0 {
		return nil, fmt.Errorf("cluster: capture-drain payload of %d bytes", len(resp.Data))
	}
	if len(resp.Data) == 0 {
		return nil, nil
	}
	offs := make([]uint64, len(resp.Data)/8)
	for i := range offs {
		offs[i] = binary.BigEndian.Uint64(resp.Data[i*8:])
	}
	return offs, nil
}

// CaptureStop discards the capture on [off, off+size).
func (c *MemoryNodeClient) CaptureStop(off, size uint64) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgCaptureStop, Offset: off, Size: size, Epoch: c.epoch.Load(),
	})
	return err
}

// Seal write-fences [off, off+size) on the node; writes and log batches
// touching it fail with a sealed error until Unseal.
func (c *MemoryNodeClient) Seal(off, size uint64) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgSealExtent, Offset: off, Size: size, Epoch: c.epoch.Load(),
	})
	return err
}

// Unseal lifts the write fence on [off, off+size).
func (c *MemoryNodeClient) Unseal(off, size uint64) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgUnsealExtent, Offset: off, Size: size, Epoch: c.epoch.Load(),
	})
	return err
}

// LeaseFence restricts writes to [off, off+size) to the runtime holding
// the writer lease; holder 0 clears the fence. The controller pushes
// these when a group's writer changes.
func (c *MemoryNodeClient) LeaseFence(off, size, holder uint64) error {
	_, err := c.pool.roundTrip(&Request{
		Kind: msgLeaseFence, Offset: off, Size: size, Runtime: holder, Epoch: c.epoch.Load(),
	})
	return err
}
