package cluster

import (
	"fmt"

	"kona/internal/slab"
)

// ControllerClient talks to a remote controller daemon.
type ControllerClient struct {
	addr string
}

// DialController returns a client for the controller at addr.
func DialController(addr string) *ControllerClient {
	return &ControllerClient{addr: addr}
}

// RegisterNode announces a memory node's capacity and TCP address.
func (c *ControllerClient) RegisterNode(id int, capacity uint64, nodeAddr string) error {
	_, err := roundTrip(c.addr, &Request{
		Kind: msgRegisterNode, NodeID: id, Capacity: capacity, Addr: nodeAddr,
	})
	return err
}

// AllocSlab requests one slab and returns it with the hosting node's
// address.
func (c *ControllerClient) AllocSlab(size uint64) (slab.Slab, string, error) {
	resp, err := roundTrip(c.addr, &Request{Kind: msgAllocSlab, Size: size})
	if err != nil {
		return slab.Slab{}, "", err
	}
	if len(resp.Slabs) != 1 {
		return slab.Slab{}, "", fmt.Errorf("cluster: controller returned %d slabs", len(resp.Slabs))
	}
	s := resp.Slabs[0]
	return s, resp.Addrs[s.Node], nil
}

// AllocReplicatedSlab requests a slab placed on `replicas` distinct nodes.
func (c *ControllerClient) AllocReplicatedSlab(size uint64, replicas int) ([]slab.Slab, map[int]string, error) {
	resp, err := roundTrip(c.addr, &Request{Kind: msgAllocSlab, Size: size, Replicas: replicas})
	if err != nil {
		return nil, nil, err
	}
	return resp.Slabs, resp.Addrs, nil
}

// ReleaseSlab returns a slab's memory to its node.
func (c *ControllerClient) ReleaseSlab(s slab.Slab) error {
	_, err := roundTrip(c.addr, &Request{
		Kind: msgReleaseSlab, NodeID: s.Node, Offset: s.RemoteOff, Size: s.Size,
	})
	return err
}

// Ping checks liveness.
func (c *ControllerClient) Ping() error {
	_, err := roundTrip(c.addr, &Request{Kind: msgPing})
	return err
}

// MemoryNodeClient talks to a remote memory-node daemon.
type MemoryNodeClient struct {
	addr string
}

// DialMemoryNode returns a client for the node at addr.
func DialMemoryNode(addr string) *MemoryNodeClient {
	return &MemoryNodeClient{addr: addr}
}

// Read fetches length bytes at offset from the node's pool.
func (c *MemoryNodeClient) Read(offset uint64, length int) ([]byte, error) {
	resp, err := roundTrip(c.addr, &Request{Kind: msgRead, Offset: offset, Length: length})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores data at offset in the node's pool.
func (c *MemoryNodeClient) Write(offset uint64, data []byte) error {
	_, err := roundTrip(c.addr, &Request{Kind: msgWrite, Offset: offset, Data: data})
	return err
}

// WriteLog ships a packed cache-line log and returns the number of entries
// the receiver applied.
func (c *MemoryNodeClient) WriteLog(packed []byte) (int, error) {
	resp, err := roundTrip(c.addr, &Request{Kind: msgWriteLog, Data: packed})
	if err != nil {
		return 0, err
	}
	return resp.Entries, nil
}

// Ping checks liveness.
func (c *MemoryNodeClient) Ping() error {
	_, err := roundTrip(c.addr, &Request{Kind: msgPing})
	return err
}
