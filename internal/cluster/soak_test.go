package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// TestSoakNoLostWrites runs a controller and two memory nodes — every
// listener injecting 1% connection drops and up to 5ms of jitter — under
// a few seconds of concurrent write/read traffic, and requires that every
// acknowledged write is visible afterwards: zero lost writes. This is the
// §4.5 "network delays and failures" scenario as an end-to-end soak over
// real sockets. Skipped with -short.
func TestSoakNoLostWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}

	faults := FaultConfig{
		Seed:      1701,
		DropProb:  0.01,
		DelayProb: 0.30,
		MaxDelay:  5 * time.Millisecond,
	}
	listen := func(seedShift int64) *FaultListener {
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := faults
		cfg.Seed += seedShift
		return NewFaultListener(inner, cfg)
	}

	ctrl := NewController()
	cs := ServeControllerOn(ctrl, listen(0))
	defer cs.Close()

	tr := chaosTransport(99)
	cc := DialControllerTransport(cs.Addr(), tr)
	defer cc.Close()

	nodeListeners := make([]*FaultListener, 2)
	for i := 0; i < 2; i++ {
		nodeListeners[i] = listen(int64(i) + 1)
		node := NewMemoryNode(i, 64<<20)
		ns := ServeMemoryNodeOn(node, nodeListeners[i])
		defer ns.Close()
		registerWithRetry(t, cc, i, 64<<20, ns.Addr())
	}

	// One slab per worker; workers only touch their own slab, so server
	// pool accesses never overlap across connections.
	const (
		workers   = 4
		opsPerWkr = 400
		chunk     = 256
	)
	type region struct {
		client *MemoryNodeClient
		off    uint64
		size   uint64
	}
	clients := map[string]*MemoryNodeClient{}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	regions := make([]region, workers)
	for i := range regions {
		s, addr, err := cc.AllocSlab(1 << 20)
		if err != nil {
			t.Fatalf("soak alloc %d: %v", i, err)
		}
		if clients[addr] == nil {
			clients[addr] = DialMemoryNodeTransport(addr, tr)
		}
		regions[i] = region{client: clients[addr], off: s.RemoteOff, size: s.Size}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := regions[w]
			model := make([]byte, r.size)
			written := map[uint64]bool{}
			// Deterministic per-worker offset walk; contents encode
			// (worker, op) so misdirected writes are detectable.
			for op := 0; op < opsPerWkr; op++ {
				off := uint64((op * 7919) % int(r.size-chunk))
				off &^= 63
				payload := bytes.Repeat([]byte{byte(w*opsPerWkr+op) | 1}, chunk)
				if err := r.client.Write(r.off+off, payload); err != nil {
					errCh <- fmt.Errorf("worker %d op %d: write: %w", w, op, err)
					return
				}
				copy(model[off:], payload)
				written[off] = true
				if op%8 == 0 {
					got, err := r.client.Read(r.off+off, chunk)
					if err != nil {
						errCh <- fmt.Errorf("worker %d op %d: read: %w", w, op, err)
						return
					}
					if !bytes.Equal(got, model[off:off+chunk]) {
						errCh <- fmt.Errorf("worker %d op %d: inline readback diverged at +%d", w, op, off)
						return
					}
				}
			}
			// Final audit: every acknowledged write must be visible.
			lost := 0
			for off := range written {
				got, err := r.client.Read(r.off+off, chunk)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: audit read at +%d: %w", w, off, err)
					return
				}
				if !bytes.Equal(got, model[off:off+uint64(chunk)]) {
					lost++
				}
			}
			if lost > 0 {
				errCh <- fmt.Errorf("worker %d: %d lost writes", w, lost)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	injected := 0
	for _, fl := range nodeListeners {
		injected += fl.Faults()
	}
	if injected == 0 {
		t.Fatalf("soak injected no faults; nothing was proven")
	}
	t.Logf("soak: %d ops, %d faults injected, 0 lost writes",
		workers*opsPerWkr, injected)
}
