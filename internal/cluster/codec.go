package cluster

import (
	"encoding/binary"
	"fmt"

	"kona/internal/mem"
	"kona/internal/slab"
)

// Hand-rolled fixed-layout binary codec for the Request/Response
// envelopes (DESIGN.md §11). The previous wire format gob-encoded both
// structs, which cost an encoder allocation, a reflective walk, and —
// decisive for the data path — a full copy of every payload byte into
// the encode buffer and back out of the decode buffer. Here the header
// fields are serialized into a small fixed-order layout and the payload
// (Request.Data / Response.Data) never passes through the codec at all:
// frame.go ships it as separate writev iovecs and reads it straight into
// its destination buffer.
//
// Every field is always present, in a fixed order, so the decoder is a
// straight-line read with no per-message schema. Integers that are `int`
// in the structs travel as their two's-complement int64 bit pattern —
// lossless for any value. Strings and slices are length-prefixed; a
// count of zero decodes to nil (matching what gob produced for empty
// values, which keeps round-trip comparisons and existing tests exact).

// Wire kind bytes. The request kind travels in the frame prefix; every
// reply uses kindResponse. The byte values are part of the wire format —
// append only, never renumber.
const (
	kindInvalid byte = iota
	kindRegisterNode
	kindAllocSlab
	kindNodeAddr
	kindRead
	kindReadPages
	kindWrite
	kindWriteLog
	kindReleaseSlab
	kindPing
	kindSlabPlacements
	kindReportFailure
	kindReportLoad
	kindCaptureStart
	kindCaptureDrain
	kindCaptureStop
	kindSealExtent
	kindUnsealExtent
	kindLeaseAcquire
	kindLeaseRenew
	kindLeaseRelease
	kindLeaseInvalidate
	kindLeaseFence

	kindResponse byte = 0x80
)

// kindBytes maps the in-process kind tags onto wire bytes, and kindNames
// back. The string tags stay the package's internal currency (telemetry
// counter names, retryable(), dispatch) — only the wire sees bytes.
var kindBytes = map[string]byte{
	msgRegisterNode:    kindRegisterNode,
	msgAllocSlab:       kindAllocSlab,
	msgNodeAddr:        kindNodeAddr,
	msgRead:            kindRead,
	msgReadPages:       kindReadPages,
	msgWrite:           kindWrite,
	msgWriteLog:        kindWriteLog,
	msgReleaseSlab:     kindReleaseSlab,
	msgPing:            kindPing,
	msgSlabPlacements:  kindSlabPlacements,
	msgReportFailure:   kindReportFailure,
	msgReportLoad:      kindReportLoad,
	msgCaptureStart:    kindCaptureStart,
	msgCaptureDrain:    kindCaptureDrain,
	msgCaptureStop:     kindCaptureStop,
	msgSealExtent:      kindSealExtent,
	msgUnsealExtent:    kindUnsealExtent,
	msgLeaseAcquire:    kindLeaseAcquire,
	msgLeaseRenew:      kindLeaseRenew,
	msgLeaseRelease:    kindLeaseRelease,
	msgLeaseInvalidate: kindLeaseInvalidate,
	msgLeaseFence:      kindLeaseFence,
}

var kindNames = map[byte]string{
	kindRegisterNode:    msgRegisterNode,
	kindAllocSlab:       msgAllocSlab,
	kindNodeAddr:        msgNodeAddr,
	kindRead:            msgRead,
	kindReadPages:       msgReadPages,
	kindWrite:           msgWrite,
	kindWriteLog:        msgWriteLog,
	kindReleaseSlab:     msgReleaseSlab,
	kindPing:            msgPing,
	kindSlabPlacements:  msgSlabPlacements,
	kindReportFailure:   msgReportFailure,
	kindReportLoad:      msgReportLoad,
	kindCaptureStart:    msgCaptureStart,
	kindCaptureDrain:    msgCaptureDrain,
	kindCaptureStop:     msgCaptureStop,
	kindSealExtent:      msgSealExtent,
	kindUnsealExtent:    msgUnsealExtent,
	kindLeaseAcquire:    msgLeaseAcquire,
	kindLeaseRenew:      msgLeaseRenew,
	kindLeaseRelease:    msgLeaseRelease,
	kindLeaseInvalidate: msgLeaseInvalidate,
	kindLeaseFence:      msgLeaseFence,
}

// --- append-style encoders ---------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendInt encodes an int as its int64 bit pattern (lossless for
// negative values, unlike a plain unsigned truncation).
func appendInt(b []byte, v int) []byte { return appendU64(b, uint64(int64(v))) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendRequestHeader serializes every Request field except Data (which
// travels as the frame payload) and Kind (which travels as the prefix's
// kind byte).
func appendRequestHeader(b []byte, req *Request) []byte {
	b = appendU64(b, req.ID)
	b = appendInt(b, req.NodeID)
	b = appendU64(b, req.Capacity)
	b = appendU64(b, req.Size)
	b = appendInt(b, req.Replicas)
	b = appendU64(b, req.Offset)
	b = appendInt(b, req.Length)
	b = appendU64(b, req.SlabID)
	b = appendU64(b, req.Epoch)
	b = appendStr(b, req.Addr)
	b = appendU32(b, uint32(len(req.Offsets)))
	for _, off := range req.Offsets {
		b = appendU64(b, off)
	}
	// Appended in kw v2 rev 3 (lease protocol); the layout is append-only,
	// so Runtime travels last.
	b = appendU64(b, req.Runtime)
	return b
}

// appendResponseHeader serializes every Response field except Data.
func appendResponseHeader(b []byte, resp *Response) []byte {
	b = appendInt(b, resp.Entries)
	b = appendU64(b, resp.Epoch)
	b = appendStr(b, resp.Err)
	b = appendU32(b, uint32(len(resp.Slabs)))
	for i := range resp.Slabs {
		s := &resp.Slabs[i]
		b = appendU64(b, s.ID)
		b = appendU64(b, uint64(s.Base))
		b = appendU64(b, s.Size)
		b = appendInt(b, s.Node)
		b = appendU64(b, s.Epoch)
		b = appendU32(b, s.RemoteKey)
		b = appendU64(b, s.RemoteOff)
	}
	b = appendU32(b, uint32(len(resp.Addrs)))
	for id, addr := range resp.Addrs {
		b = appendInt(b, id)
		b = appendStr(b, addr)
	}
	return b
}

// --- bounds-checked decoder --------------------------------------------

// wireReader consumes a header byte-for-byte with a sticky error, so a
// truncated or corrupt header (fuzzed input, a desynced peer) degrades
// to zero values and one descriptive error instead of a panic.
type wireReader struct {
	b   []byte
	off int
	bad bool
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) u32() uint32 {
	if r.bad || r.remaining() < 4 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.bad || r.remaining() < 8 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) int() int { return int(int64(r.u64())) }

// str reads a length-prefixed string, copying it out of the (pooled,
// reused) header scratch.
func (r *wireReader) str() string {
	n := int(r.u32())
	if r.bad || n < 0 || r.remaining() < n {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a collection length and validates it against the bytes
// actually remaining (elemSize per element), so a corrupt count cannot
// trigger an outsized allocation.
func (r *wireReader) count(elemSize int) int {
	n := int(r.u32())
	if r.bad || n < 0 || n > r.remaining()/elemSize {
		r.bad = true
		return 0
	}
	return n
}

// done validates that the header was exactly consumed: leftover bytes
// mean the peer speaks a different layout revision.
func (r *wireReader) done(what string) error {
	if r.bad {
		return fmt.Errorf("cluster: truncated or corrupt %s header", what)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after %s header", r.remaining(), what)
	}
	return nil
}

// decodeRequestHeader fills req from a header produced by
// appendRequestHeader. req.Offsets is reused when capacity allows; Data
// is left untouched (the payload is delivered separately).
func decodeRequestHeader(kind byte, hdr []byte, req *Request) error {
	name, ok := kindNames[kind]
	if !ok {
		return fmt.Errorf("cluster: unknown request kind 0x%02x", kind)
	}
	req.Kind = name
	r := wireReader{b: hdr}
	req.ID = r.u64()
	req.NodeID = r.int()
	req.Capacity = r.u64()
	req.Size = r.u64()
	req.Replicas = r.int()
	req.Offset = r.u64()
	req.Length = r.int()
	req.SlabID = r.u64()
	req.Epoch = r.u64()
	req.Addr = r.str()
	if n := r.count(8); n > 0 {
		offs := req.Offsets[:0]
		if cap(offs) < n {
			offs = make([]uint64, 0, n)
		}
		for i := 0; i < n; i++ {
			offs = append(offs, r.u64())
		}
		req.Offsets = offs
	} else {
		req.Offsets = nil
	}
	req.Runtime = r.u64()
	return r.done("request")
}

// slabWireSize is one encoded slab record: 5 u64 fields + 1 u32 + 1 u64.
const slabWireSize = 5*8 + 4 + 8

// decodeResponseHeader fills resp from a header produced by
// appendResponseHeader. Data is left untouched.
func decodeResponseHeader(hdr []byte, resp *Response) error {
	r := wireReader{b: hdr}
	resp.Entries = r.int()
	resp.Epoch = r.u64()
	resp.Err = r.str()
	if n := r.count(slabWireSize); n > 0 {
		resp.Slabs = make([]slab.Slab, n)
		for i := range resp.Slabs {
			s := &resp.Slabs[i]
			s.ID = r.u64()
			s.Base = mem.Addr(r.u64())
			s.Size = r.u64()
			s.Node = r.int()
			s.Epoch = r.u64()
			s.RemoteKey = r.u32()
			s.RemoteOff = r.u64()
		}
	} else {
		resp.Slabs = nil
	}
	// Addr map entries are at least 12 bytes (node + empty string).
	if n := r.count(8 + 4); n > 0 {
		resp.Addrs = make(map[int]string, n)
		for i := 0; i < n; i++ {
			id := r.int()
			addr := r.str()
			if r.bad {
				break
			}
			resp.Addrs[id] = addr
		}
	} else {
		resp.Addrs = nil
	}
	return r.done("response")
}
