package cluster

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"kona/internal/cllog"
	"kona/internal/mem"
	"kona/internal/slab"
)

func TestControllerRoundRobin(t *testing.T) {
	c := NewController()
	if _, err := c.AllocSlab(1 << 20); err == nil {
		t.Fatalf("alloc with no nodes succeeded")
	}
	n0 := NewMemoryNode(0, 64<<20)
	n1 := NewMemoryNode(1, 64<<20)
	if err := c.Register(n0); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(n0); err == nil {
		t.Fatalf("duplicate registration accepted")
	}
	if err := c.Register(n1); err != nil {
		t.Fatal(err)
	}
	s1, err := c.AllocSlab(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.AllocSlab(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Node == s2.Node {
		t.Errorf("round-robin placed both slabs on node %d", s1.Node)
	}
	if s1.Base < VFMemBase || s2.Base < VFMemBase {
		t.Errorf("slab bases below VFMemBase")
	}
	if s1.Range().Overlaps(s2.Range()) {
		t.Errorf("slab address ranges overlap: %v %v", s1.Range(), s2.Range())
	}
	if s1.ID == s2.ID {
		t.Errorf("duplicate slab ids")
	}
}

func TestControllerSkipsFullAndFailedNodes(t *testing.T) {
	c := NewController()
	small := NewMemoryNode(0, 1<<20)
	big := NewMemoryNode(1, 64<<20)
	if err := c.Register(small); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(big); err != nil {
		t.Fatal(err)
	}
	// 8MB slab only fits on the big node, repeatedly.
	for i := 0; i < 3; i++ {
		s, err := c.AllocSlab(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if s.Node != 1 {
			t.Errorf("slab landed on full node")
		}
	}
	big.Fail()
	if _, err := c.AllocSlab(8 << 20); err == nil {
		t.Errorf("allocation on failed node succeeded")
	}
	// Oversized request fails cleanly.
	if _, err := c.AllocSlab(1 << 40); err == nil {
		t.Errorf("oversized slab succeeded")
	}
	if _, err := c.AllocSlab(0); err == nil {
		t.Errorf("zero slab succeeded")
	}
}

func TestReplicatedSlabPlacement(t *testing.T) {
	c := NewController()
	for i := 0; i < 3; i++ {
		if err := c.Register(NewMemoryNode(i, 64<<20)); err != nil {
			t.Fatal(err)
		}
	}
	slabs, err := c.AllocReplicatedSlab(8<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slabs) != 2 {
		t.Fatalf("replicas = %d", len(slabs))
	}
	if slabs[0].Node == slabs[1].Node {
		t.Errorf("replicas co-located on node %d", slabs[0].Node)
	}
	if slabs[0].Base != slabs[1].Base {
		t.Errorf("replica bases differ: %v vs %v", slabs[0].Base, slabs[1].Base)
	}
	if _, err := c.AllocReplicatedSlab(8<<20, 4); err == nil {
		t.Errorf("4 replicas on 3 nodes succeeded")
	}
	if _, err := c.AllocReplicatedSlab(8<<20, 0); err == nil {
		t.Errorf("0 replicas succeeded")
	}
}

func TestControllerRemove(t *testing.T) {
	c := NewController()
	if err := c.Register(NewMemoryNode(0, 8<<20)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(NewMemoryNode(1, 8<<20)); err != nil {
		t.Fatal(err)
	}
	c.Remove(0)
	if c.Nodes() != 1 {
		t.Fatalf("nodes = %d", c.Nodes())
	}
	for i := 0; i < 2; i++ {
		s, err := c.AllocSlab(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if s.Node != 1 {
			t.Errorf("slab placed on removed node")
		}
	}
}

func TestMemoryNodeCarve(t *testing.T) {
	n := NewMemoryNode(3, 4<<20)
	off1, err := n.CarveSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := n.CarveSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if off1 == off2 {
		t.Errorf("slabs overlap")
	}
	if _, err := n.CarveSlab(8 << 20); err == nil {
		t.Errorf("over-capacity carve succeeded")
	}
	total, used := n.Capacity()
	if total != 4<<20 || used != 2<<20 {
		t.Errorf("capacity = %d/%d", used, total)
	}
}

func TestLogReceiverScatters(t *testing.T) {
	n := NewMemoryNode(0, 1<<20)
	entries := []cllog.Entry{
		{RemoteOff: 0, Data: bytes.Repeat([]byte{0xAA}, mem.CacheLineSize)},
		{RemoteOff: 4096, Data: bytes.Repeat([]byte{0xBB}, 2*mem.CacheLineSize)},
	}
	packed, err := cllog.Pack(entries, n.logMR.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	applied, service, err := n.UnpackLog(packed)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || service <= 0 {
		t.Fatalf("applied=%d service=%v", applied, service)
	}
	pool := n.PoolBytes()
	if pool[0] != 0xAA || pool[63] != 0xAA || pool[64] == 0xAA {
		t.Errorf("entry 0 misplaced")
	}
	if pool[4096] != 0xBB || pool[4096+127] != 0xBB {
		t.Errorf("entry 1 misplaced")
	}
	logs, lines := n.ReceiverStats()
	if logs != 1 || lines != 2 {
		t.Errorf("receiver stats = %d/%d", logs, lines)
	}
	// Out-of-range entry is rejected.
	bad := []cllog.Entry{{RemoteOff: 1 << 20, Data: make([]byte, 64)}}
	packed, err = cllog.Pack(bad, n.logMR.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.UnpackLog(packed); err == nil {
		t.Errorf("out-of-pool entry accepted")
	}
	n.Fail()
	if _, _, err := n.UnpackLog(packed); err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("failed node accepted log: %v", err)
	}
}

func TestTCPEndToEnd(t *testing.T) {
	// Controller daemon.
	ctrl := NewController()
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	// Two memory-node daemons; note the controller holds its own node
	// objects (registered via RPC) — the daemons serve the data plane.
	var nodeSrvs []*MemoryNodeServer
	cc := DialController(cs.Addr())
	for i := 0; i < 2; i++ {
		n := NewMemoryNode(i, 8<<20)
		ns, err := ServeMemoryNode(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ns.Close()
		nodeSrvs = append(nodeSrvs, ns)
		if err := cc.RegisterNode(i, 8<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := cc.Ping(); err != nil {
		t.Fatal(err)
	}

	// Allocate a slab; write and read back through the hosting node.
	s, nodeAddr, err := cc.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if nodeAddr == "" {
		t.Fatalf("controller returned no node address")
	}
	mc := DialMemoryNode(nodeAddr)
	if err := mc.Ping(); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 4096)
	if err := mc.Write(s.RemoteOff, payload); err != nil {
		t.Fatal(err)
	}
	got, err := mc.Read(s.RemoteOff, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("TCP read-back mismatch")
	}

	// Ship a cache-line log over TCP.
	entries := []cllog.Entry{{RemoteOff: s.RemoteOff + 8192, Data: bytes.Repeat([]byte{3}, 64)}}
	packed := make([]byte, cllog.PackedSize(entries))
	if _, err := cllog.Pack(entries, packed); err != nil {
		t.Fatal(err)
	}
	applied, err := mc.WriteLog(packed)
	if err != nil || applied != 1 {
		t.Fatalf("WriteLog: %d %v", applied, err)
	}
	got, err = mc.Read(s.RemoteOff+8192, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, entries[0].Data) {
		t.Fatalf("log entry not scattered over TCP")
	}

	// Replicated allocation over TCP.
	slabs, addrs, err := cc.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slabs) != 2 || len(addrs) != 2 {
		t.Fatalf("replicated alloc: %d slabs, %d addrs", len(slabs), len(addrs))
	}

	// Error paths over the wire.
	if _, err := mc.Read(1<<40, 10); err == nil {
		t.Errorf("out-of-range TCP read succeeded")
	}
	if _, _, err := cc.AllocSlab(1 << 40); err == nil {
		t.Errorf("oversized TCP alloc succeeded")
	}
	_ = nodeSrvs
}

func TestHealthSweep(t *testing.T) {
	c := NewController()
	for i := 0; i < 3; i++ {
		if err := c.Register(NewMemoryNode(i, 8<<20)); err != nil {
			t.Fatal(err)
		}
	}
	if dead := c.HealthSweep(); len(dead) != 0 {
		t.Fatalf("healthy rack reported dead nodes: %v", dead)
	}
	n1, _ := c.Node(1)
	n1.Fail()
	dead := c.HealthSweep()
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("sweep = %v, want [1]", dead)
	}
	if c.Nodes() != 2 {
		t.Errorf("nodes after sweep = %d", c.Nodes())
	}
	// Allocation no longer lands on the removed node.
	for i := 0; i < 4; i++ {
		s, err := c.AllocSlab(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if s.Node == 1 {
			t.Errorf("slab placed on swept node")
		}
	}
}

func TestTCPProtocolRobustness(t *testing.T) {
	ctrl := NewController()
	if err := ctrl.Register(NewMemoryNode(0, 8<<20)); err != nil {
		t.Fatal(err)
	}
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	// Unknown request kind gets a clean error, not a hang.
	resp, err := roundTrip(cs.Addr(), &Request{Kind: "bogus"})
	if err == nil {
		t.Errorf("unknown kind accepted: %+v", resp)
	}
	// Raw garbage on the socket must not wedge the server.
	conn, err := net.Dial("tcp", cs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err = conn.Write([]byte("this is not gob")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The server still answers afterwards.
	if _, err := roundTrip(cs.Addr(), &Request{Kind: msgPing}); err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
	// Release of an unknown node errors cleanly over the wire.
	cc := DialController(cs.Addr())
	if err := cc.ReleaseSlab(slab.Slab{Node: 99, Size: 1}); err == nil {
		t.Errorf("release for unknown node accepted")
	}
	// Release round trip.
	s, _, err := cc.AllocSlab(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.ReleaseSlab(s); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	ctrl := NewController()
	for i := 0; i < 2; i++ {
		if err := ctrl.Register(NewMemoryNode(i, 64<<20)); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cc := DialController(cs.Addr())
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cc.AllocSlab(1 << 20); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent alloc: %v", err)
	}
}

func TestNodeAccessors(t *testing.T) {
	n := NewMemoryNode(7, 1<<20)
	if n.Endpoint() == nil {
		t.Errorf("nil endpoint")
	}
	if n.LogKey() == n.PoolKey() {
		t.Errorf("log and pool share a key")
	}
	if n.ID() != 7 {
		t.Errorf("id = %d", n.ID())
	}
	// Released extents are reused exactly.
	off, err := n.CarveSlab(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	n.ReleaseSlab(off, 1<<19)
	off2, err := n.CarveSlab(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off {
		t.Errorf("released extent not reused: %d vs %d", off2, off)
	}
}
