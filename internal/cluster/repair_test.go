package cluster

import (
	"bytes"
	"testing"
	"time"

	"kona/internal/slab"
)

// repairRack builds a controller with n registered 8MB memory nodes.
func repairRack(t *testing.T, n int) *Controller {
	t.Helper()
	c := NewController()
	for i := 0; i < n; i++ {
		if err := c.Register(NewMemoryNode(i, 8<<20)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// fillMember writes a deterministic pattern into one replica's extent.
func fillMember(t *testing.T, c *Controller, s slab.Slab, seed byte) []byte {
	t.Helper()
	data := make([]byte, s.Size)
	for i := range data {
		data[i] = seed + byte(i)
	}
	n, ok := c.Node(s.Node)
	if !ok {
		t.Fatalf("member node %d not registered", s.Node)
	}
	if err := n.WriteAt(s.RemoteOff, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func readMember(t *testing.T, c *Controller, s slab.Slab) []byte {
	t.Helper()
	n, ok := c.Node(s.Node)
	if !ok {
		t.Fatalf("member node %d not registered", s.Node)
	}
	buf := make([]byte, s.Size)
	if err := n.ReadAt(s.RemoteOff, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func drainRepairs(t *testing.T, e *RepairEngine, c *Controller) {
	t.Helper()
	for i := 0; c.DegradedCount() > 0; i++ {
		if i > 100 {
			t.Fatalf("repair did not converge: %d slabs still degraded", c.DegradedCount())
		}
		e.RepairOnce()
	}
}

// TestRepairRestoresReplication kills one replica of a group and checks
// the engine copies the slab onto a healthy node, flips the placement,
// and the new member's bytes match the surviving source exactly.
func TestRepairRestoresReplication(t *testing.T) {
	c := repairRack(t, 3)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := fillMember(t, c, members[0], 7)
	fillMember(t, c, members[1], 7)
	gid := members[0].ID

	// A failure report against a live node must be a no-op.
	if c.ReportNodeFailure(members[1].Node) {
		t.Fatalf("live node expelled by a false failure report")
	}

	epochBefore := c.PlacementEpoch()
	victim := members[1].Node
	vn, _ := c.Node(victim)
	vn.Fail()
	if !c.ReportNodeFailure(victim) {
		t.Fatalf("confirmed-dead node not removed")
	}
	d := c.DegradedSlabs()
	if len(d) != 1 || d[0].Group != gid || d[0].LostNode != victim {
		t.Fatalf("degraded set = %+v, want group %d / node %d", d, gid, victim)
	}

	e := NewRepairEngine(c, &LocalRepairTransport{Ctrl: c}, RepairConfig{})
	if flips := e.RepairOnce(); flips != 1 {
		t.Fatalf("RepairOnce flips = %d, want 1", flips)
	}
	if c.DegradedCount() != 0 {
		t.Fatalf("degraded entry leaked after repair")
	}
	st := e.Stats()
	if st.Flips != 1 || st.BytesCopied != 1<<20 {
		t.Fatalf("stats = %+v, want 1 flip / %d bytes", st, 1<<20)
	}
	if c.PlacementEpoch() <= epochBefore {
		t.Fatalf("placement epoch did not advance across remove+flip")
	}

	cur, ok := c.Placements(gid)
	if !ok || len(cur) != 2 {
		t.Fatalf("placements = %v", cur)
	}
	for _, m := range cur {
		if m.Node == victim {
			t.Fatalf("dead node still in placement group: %+v", cur)
		}
		if got := c.Incarnation(m.Node); m.Epoch != got {
			t.Fatalf("member epoch %d, node incarnation %d", m.Epoch, got)
		}
		if got := readMember(t, c, m); !bytes.Equal(got, want) {
			t.Fatalf("member on node %d diverged after repair", m.Node)
		}
	}
}

// TestRepairSkipsLostNodeAsTarget is the regression test for the
// sweep/repair race: a node that died between the health sweep and the
// repair enqueue must never be chosen as its own repair target — but the
// same id rejoining under a fresh incarnation is a valid target.
func TestRepairSkipsLostNodeAsTarget(t *testing.T) {
	c := repairRack(t, 2)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := fillMember(t, c, members[0], 3)
	fillMember(t, c, members[1], 3)
	victim := members[1].Node
	lostEpoch := c.Incarnation(victim)
	vn, _ := c.Node(victim)
	vn.Fail()
	c.HealthSweep()

	d := c.DegradedSlabs()
	if len(d) != 1 {
		t.Fatalf("degraded = %+v", d)
	}
	// Only the surviving node is left and it already holds a member: the
	// dead node must not be offered as a target, so the carve fails.
	if s, err := c.CarveRepairTarget(d[0]); err == nil {
		t.Fatalf("carved repair target %+v with no eligible node", s)
	}
	e := NewRepairEngine(c, &LocalRepairTransport{Ctrl: c}, RepairConfig{})
	if flips := e.RepairOnce(); flips != 0 {
		t.Fatalf("repaired with no eligible target (flips=%d)", flips)
	}
	if c.DegradedCount() != 1 {
		t.Fatalf("degraded entry lost by a failed repair")
	}

	// Crash-rejoin: the same id comes back empty under a new incarnation
	// and is now a legitimate repair target.
	if err := c.Register(NewMemoryNode(victim, 8<<20)); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := c.Incarnation(victim); got != lostEpoch+1 {
		t.Fatalf("rejoin incarnation = %d, want %d", got, lostEpoch+1)
	}
	target, err := c.CarveRepairTarget(d[0])
	if err != nil {
		t.Fatalf("rejoined node rejected as repair target: %v", err)
	}
	if target.Node != victim || target.Epoch != lostEpoch+1 {
		t.Fatalf("target = %+v, want node %d at epoch %d", target, victim, lostEpoch+1)
	}
	c.AbandonRepair(target)
	drainRepairs(t, e, c)
	cur, _ := c.Placements(members[0].ID)
	for _, m := range cur {
		if got := readMember(t, c, m); !bytes.Equal(got, want) {
			t.Fatalf("member on node %d diverged after rejoin repair", m.Node)
		}
	}
}

// TestCommitRepairFencesStaleFlips covers the copy-window failure modes:
// the target dying mid-copy and a double commit must both be rejected
// without losing the degraded entry.
func TestCommitRepairFencesStaleFlips(t *testing.T) {
	c := repairRack(t, 3)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	fillMember(t, c, members[0], 11)
	fillMember(t, c, members[1], 11)
	vn, _ := c.Node(members[1].Node)
	vn.Fail()
	c.HealthSweep()
	d := c.DegradedSlabs()[0]

	target, err := c.CarveRepairTarget(d)
	if err != nil {
		t.Fatal(err)
	}
	// Target dies during the copy window: the flip must be refused.
	tn, _ := c.Node(target.Node)
	tn.Fail()
	if err := c.CommitRepair(d, target); err == nil {
		t.Fatalf("committed repair onto a node that died mid-copy")
	}
	c.AbandonRepair(target)
	if c.DegradedCount() != 1 {
		t.Fatalf("degraded entry lost by an aborted flip")
	}

	// Target recovers; the next pass completes, and a second commit of the
	// same degraded entry is stale.
	tn.Recover()
	e := NewRepairEngine(c, &LocalRepairTransport{Ctrl: c}, RepairConfig{})
	drainRepairs(t, e, c)
	if err := c.CommitRepair(d, target); err == nil {
		t.Fatalf("double commit accepted")
	}
}

// TestRepairTransportEpochFence checks both transports reject operations
// stamped with a stale incarnation — the fence that keeps a pre-crash
// placement from reading or writing a rejoined node's fresh pool.
func TestRepairTransportEpochFence(t *testing.T) {
	c := repairRack(t, 1)
	tr := &LocalRepairTransport{Ctrl: c}
	inc := c.Incarnation(0)
	if _, err := tr.ReadPages(0, inc, []uint64{0}, 64); err != nil {
		t.Fatalf("current-incarnation read rejected: %v", err)
	}
	if _, err := tr.ReadPages(0, inc+1, []uint64{0}, 64); err == nil {
		t.Fatalf("stale-incarnation read served")
	}
	if err := tr.Write(0, inc+1, 0, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatalf("stale-incarnation write applied")
	}

	// The same fence over the wire: a memnode daemon refuses data RPCs
	// from a client stamped with the wrong epoch.
	node := NewMemoryNode(9, 1<<20)
	node.SetIncarnation(3)
	srv := mustServeNode(t, node)
	defer srv.Close()
	mc := DialMemoryNode(srv.Addr())
	defer mc.Close()
	mc.SetEpoch(2)
	if _, err := mc.Read(0, 16); err == nil {
		t.Fatalf("TCP read with stale epoch served")
	}
	mc.SetEpoch(3)
	if _, err := mc.Read(0, 16); err != nil {
		t.Fatalf("TCP read with current epoch rejected: %v", err)
	}
	mc.SetEpoch(0)
	if _, err := mc.Read(0, 16); err != nil {
		t.Fatalf("unfenced TCP read rejected: %v", err)
	}
}

func mustServeNode(t *testing.T, n *MemoryNode) *MemoryNodeServer {
	t.Helper()
	srv, err := ServeMemoryNode(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestRegisterArbitratesRejoin: registering an id held by a live node is
// rejected; once the incumbent is dead the newcomer is admitted under a
// higher incarnation, the dead node's members degrade, and repair can
// then land the lost replica back on the rejoined node.
func TestRegisterArbitratesRejoin(t *testing.T) {
	c := repairRack(t, 2)
	members, err := c.AllocReplicatedSlab(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := fillMember(t, c, members[0], 5)
	fillMember(t, c, members[1], 5)

	if err := c.Register(NewMemoryNode(0, 8<<20)); err == nil {
		t.Fatalf("double registration of a live id accepted")
	}

	n0, _ := c.Node(0)
	n0.Fail()
	// No sweep ran: Register itself must detect the dead incumbent, expel
	// it (degrading its member) and admit the newcomer.
	if err := c.Register(NewMemoryNode(0, 8<<20)); err != nil {
		t.Fatalf("rejoin over dead incumbent: %v", err)
	}
	if got := c.Incarnation(0); got != 2 {
		t.Fatalf("incarnation after rejoin = %d, want 2", got)
	}
	if c.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", c.Nodes())
	}
	if c.DegradedCount() != 1 {
		t.Fatalf("dead incumbent's member not degraded on expulsion")
	}

	e := NewRepairEngine(c, &LocalRepairTransport{Ctrl: c}, RepairConfig{})
	drainRepairs(t, e, c)
	cur, _ := c.Placements(members[0].ID)
	if len(cur) != 2 {
		t.Fatalf("placements = %+v", cur)
	}
	for _, m := range cur {
		if m.Node == 0 && m.Epoch != 2 {
			t.Fatalf("repaired member on rejoined node carries stale epoch %d", m.Epoch)
		}
		if got := readMember(t, c, m); !bytes.Equal(got, want) {
			t.Fatalf("member on node %d diverged", m.Node)
		}
	}
}

// TestByteBudgetEnforcesRate runs the token bucket on a fake clock and
// checks the slept-out time matches the configured bytes/sec exactly:
// total traffic beyond the initial burst must take (bytes/rate) seconds.
func TestByteBudgetEnforcesRate(t *testing.T) {
	const rate, burst = 1 << 20, 64 << 10
	clock := time.Unix(0, 0)
	var slept time.Duration
	b := newByteBudget(rate, burst)
	b.now = func() time.Time { return clock }
	b.sleep = func(d time.Duration) {
		if d < 0 {
			t.Fatalf("negative sleep %v", d)
		}
		slept += d
		clock = clock.Add(d)
	}

	total := 0
	for i := 0; i < 64; i++ {
		b.take(64 << 10)
		total += 64 << 10
	}
	want := time.Duration(float64(total-burst) / rate * float64(time.Second))
	if slept < want {
		t.Fatalf("slept %v for %d bytes at %d B/s, want >= %v (budget exceeded)", slept, total, rate, want)
	}
	if slept > want+time.Millisecond {
		t.Fatalf("slept %v, want ~%v (budget overly conservative)", slept, want)
	}
}

func TestByteBudgetUnlimited(t *testing.T) {
	b := newByteBudget(0, 0)
	b.sleep = func(d time.Duration) { t.Fatalf("unlimited budget slept %v", d) }
	for i := 0; i < 100; i++ {
		b.take(1 << 30)
	}
}

// TestRepairRespectsByteBudget times a real repair against a small
// budget: copying 256KB at 1MB/s (100KB default burst) must sleep out at
// least ~150ms of deficit — background re-replication cannot exceed its
// configured share of the fabric.
func TestRepairRespectsByteBudget(t *testing.T) {
	c := repairRack(t, 3)
	members, err := c.AllocReplicatedSlab(256<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	fillMember(t, c, members[0], 1)
	fillMember(t, c, members[1], 1)
	vn, _ := c.Node(members[1].Node)
	vn.Fail()
	c.HealthSweep()

	e := NewRepairEngine(c, &LocalRepairTransport{Ctrl: c}, RepairConfig{BytesPerSec: 1 << 20})
	start := time.Now()
	drainRepairs(t, e, c)
	elapsed := time.Since(start)
	// 256KB - ~100KB burst at 1MB/s => >= ~150ms of enforced pacing.
	if min := 140 * time.Millisecond; elapsed < min {
		t.Fatalf("256KB repair at 1MB/s took %v, want >= %v", elapsed, min)
	}
	if st := e.Stats(); st.BytesCopied != 256<<10 {
		t.Fatalf("bytes copied = %d, want %d", st.BytesCopied, 256<<10)
	}
}
