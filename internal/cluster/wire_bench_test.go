package cluster

import (
	"bytes"
	"net"
	"testing"

	"kona/internal/cllog"
	"kona/internal/telemetry"
)

// The bench-wire guard (Makefile): bytes-copied-per-op and allocs/op on
// the scatter-gather wire path. "Copied" means payload bytes staged
// through an intermediate buffer between the wire and their true
// destination, read from the cluster.*.payload_copies telemetry on both
// ends. The gob-era wire path staged every WriteLog payload three times
// (client encode copy, server decode copy, server copy into the log
// region); the writev path must stage it zero times — the guard test
// fails the build if a copy creeps back in.

// wireRig is a memnode daemon and client with telemetry on both ends.
func wireRig(tb testing.TB) (*MemoryNodeClient, *telemetry.Registry, *telemetry.Registry) {
	tb.Helper()
	clientReg := telemetry.New(16)
	serverReg := telemetry.New(16)
	node := NewMemoryNode(1, 16<<20)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := ServeMemoryNodeOnWith(node, inner, serverReg)
	tb.Cleanup(func() { srv.Close() })
	mc := DialMemoryNodeTransport(srv.Addr(), Transport{Metrics: clientReg})
	tb.Cleanup(func() { mc.Close() })
	return mc, clientReg, serverReg
}

// packedEvictLog builds a 64-entry packed cache-line log (~the shape one
// eviction drain ships).
func packedEvictLog(tb testing.TB) []byte {
	tb.Helper()
	entries := make([]cllog.Entry, 64)
	for i := range entries {
		entries[i] = cllog.Entry{RemoteOff: uint64(i) * 64, Data: bytes.Repeat([]byte{byte(i)}, 64)}
	}
	packed := make([]byte, cllog.PackedSize(entries))
	if _, err := cllog.Pack(entries, packed); err != nil {
		tb.Fatal(err)
	}
	return packed
}

// totalStagedBytes sums both ends' payload-copy counters.
func totalStagedBytes(clientReg, serverReg *telemetry.Registry) uint64 {
	return clientReg.Counter("cluster.rpc.payload_copies").Value() +
		serverReg.Counter("cluster.memnode.payload_copies").Value()
}

// TestWireEvictPathZeroCopies is the guard `make bench-wire` runs: the
// evict ship (WriteLog) and the fetch fill (ReadInto / ReadPagesInto)
// must move their payloads with ZERO staged bytes on either end. The gob
// baseline staged every WriteLog payload 3x, so this also proves the
// "bytes copied per evicted page at least halved" acceptance bar with
// maximal margin.
func TestWireEvictPathZeroCopies(t *testing.T) {
	mc, clientReg, serverReg := wireRig(t)
	packed := packedEvictLog(t)

	const ships = 32
	for i := 0; i < ships; i++ {
		half := len(packed) / 2
		if n, err := mc.WriteLogVec(packed[:half], packed[half:]); err != nil || n != 64 {
			t.Fatalf("ship %d: entries=%d err=%v", i, n, err)
		}
	}
	frame := make([]byte, 4096)
	frames := [][]byte{make([]byte, 512), make([]byte, 512)}
	for i := 0; i < ships; i++ {
		if err := mc.ReadInto(0, frame); err != nil {
			t.Fatal(err)
		}
		if err := mc.ReadPagesInto([]uint64{0, 4096}, frames); err != nil {
			t.Fatal(err)
		}
	}

	if moved := serverReg.Counter("cluster.memnode.log_bytes").Value(); moved != uint64(ships*len(packed)) {
		t.Fatalf("log path moved %d bytes, want %d — guard measured nothing", moved, ships*len(packed))
	}
	// The server Read path still stages replies through its pooled buffer
	// (the pool is only reachable under its lock); everything else must
	// be copy-free. Evict path specifically: zero.
	if got := clientReg.Counter("cluster.rpc.payload_copies").Value(); got != 0 {
		t.Fatalf("client staged %d payload bytes on zero-copy paths (gob baseline: %d)",
			got, 2*ships*len(packed))
	}
	wantServerStage := uint64(ships * (4096 + 2*512)) // Read replies staged pool->buffer
	if got := serverReg.Counter("cluster.memnode.payload_copies").Value(); got != wantServerStage {
		t.Fatalf("server staged %d payload bytes, want %d (read staging only; write-log must be 0)",
			got, wantServerStage)
	}
}

// BenchmarkWireWriteLogVec measures the evict ship: allocs/op via
// -benchmem, staged payload bytes per op via the copiedB/op metric
// (must print 0).
func BenchmarkWireWriteLogVec(b *testing.B) {
	mc, clientReg, serverReg := wireRig(b)
	packed := packedEvictLog(b)
	half := len(packed) / 2
	if _, err := mc.WriteLogVec(packed[:half], packed[half:]); err != nil {
		b.Fatal(err)
	}
	base := totalStagedBytes(clientReg, serverReg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.WriteLogVec(packed[:half], packed[half:]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalStagedBytes(clientReg, serverReg)-base)/float64(b.N), "copiedB/op")
	b.ReportMetric(float64(len(packed)), "payloadB/op")
}

// BenchmarkWireReadInto measures the fetch fill into a caller frame:
// the client side must stage nothing (server read staging is reported in
// the copiedB/op metric for honesty — it is the one remaining copy).
func BenchmarkWireReadInto(b *testing.B) {
	mc, clientReg, serverReg := wireRig(b)
	frame := make([]byte, 4096)
	if err := mc.ReadInto(0, frame); err != nil {
		b.Fatal(err)
	}
	base := totalStagedBytes(clientReg, serverReg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.ReadInto(0, frame); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalStagedBytes(clientReg, serverReg)-base)/float64(b.N), "copiedB/op")
	if got := clientReg.Counter("cluster.rpc.payload_copies").Value(); got != 0 {
		b.Fatalf("client staged %d payload bytes", got)
	}
}
