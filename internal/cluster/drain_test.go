package cluster

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// TestMemnodeGracefulDrain exercises the daemons' SIGTERM path: Shutdown
// must wake idle connections, refuse new ones, and wait for a request
// already past its frame header — even one whose payload has not fully
// arrived — instead of tearing it mid-RPC.
func TestMemnodeGracefulDrain(t *testing.T) {
	node := NewMemoryNode(0, 1<<20)
	srv, err := ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Idle connection, parked at a frame boundary after one ping.
	idle, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if _, err := writeRequestFrame(idle, &Request{Kind: msgPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if _, err := readResponseFrame(idle, &resp, nil); err != nil {
		t.Fatal(err)
	}

	// Busy connection: a write RPC sent up to, but not including, its
	// last 4 payload bytes — the server is blocked reading the payload.
	busy, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	payload := []byte("drain-payload")
	var frame bytes.Buffer
	if _, err := writeRequestFrame(&frame, &Request{Kind: msgWrite, Offset: 64}, payload); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	if _, err := busy.Write(raw[:len(raw)-4]); err != nil {
		t.Fatal(err)
	}
	// Let the server consume the frame header and mark the conn busy.
	time.Sleep(50 * time.Millisecond)

	drained := make(chan int, 1)
	go func() { drained <- srv.Shutdown(5 * time.Second) }()
	time.Sleep(50 * time.Millisecond) // drain is now in flight

	// New connections must be refused mid-drain.
	if c, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		c.SetReadDeadline(time.Now().Add(time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Error("new connection served during drain")
		}
		c.Close()
	}

	// Deliver the rest of the in-flight write; it must be answered.
	if _, err := busy.Write(raw[len(raw)-4:]); err != nil {
		t.Fatalf("completing in-flight write: %v", err)
	}
	busy.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp = Response{}
	if _, err := readResponseFrame(busy, &resp, nil); err != nil {
		t.Fatalf("in-flight write during drain: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("in-flight write during drain answered %q", resp.Err)
	}

	n := <-drained
	if n != 2 {
		t.Errorf("drained %d connections, want 2", n)
	}

	// The acknowledged write must have landed in the pool.
	got := make([]byte, len(payload))
	if err := node.ReadAt(64, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("pool holds %q, want %q", got, payload)
	}

	// Both connections are closed once the drain completes.
	idle.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Error("idle connection still open after drain")
	}
	busy.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := busy.Read(make([]byte, 1)); err == nil {
		t.Error("busy connection still open after drain")
	}
}

// TestControllerGracefulDrain covers the controller daemon's half of the
// same protocol: idle connections wake and close, the listener stops.
func TestControllerGracefulDrain(t *testing.T) {
	cs, err := ServeController(NewController(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	conn, err := net.Dial("tcp", cs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeRequestFrame(conn, &Request{Kind: msgPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if _, err := readResponseFrame(conn, &resp, nil); err != nil {
		t.Fatal(err)
	}

	if n := cs.Shutdown(time.Second); n != 1 {
		t.Errorf("drained %d connections, want 1", n)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open after drain")
	}
	if _, err := net.DialTimeout("tcp", cs.Addr(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after drain")
	}
}
