package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Wire framing for the TCP protocol (DESIGN.md §11): every message is a
// fixed 12-byte prefix, a small fixed-layout binary header (codec.go),
// and an optional raw payload.
//
//	[0]     'k'            magic
//	[1]     'w'            magic
//	[2]     0x02           wire version
//	[3]     kind           request kind byte, or kindResponse
//	[4:8]   header length  big-endian uint32
//	[8:12]  payload length big-endian uint32
//
// The split between header and payload is the point: the header is tiny
// and staged through a pooled scratch buffer, while payload bytes are
// handed to the kernel as separate writev iovecs (net.Buffers) on send
// and ReadFull'd straight into their destination — a caller's page
// frame, the memnode's log region — on receive. Payloads cross the wire
// path without ever being copied into an intermediate buffer.
//
// A peer speaking the legacy gob framing (4-byte length prefix, gob
// body) fails the magic check on the first frame and is rejected with a
// version-mismatch error instead of producing garbage.

const (
	frameMagic0  = 'k'
	frameMagic1  = 'w'
	frameVersion = 2
	// framePrefixLen is the fixed prefix: magic, version, kind, lengths.
	framePrefixLen = 12
)

// maxFrameSize bounds a single frame's payload. The largest legitimate
// payloads are cache-line logs (LogRegionSize, 4MB) and bulk writes;
// anything beyond this is treated as corruption rather than a request to
// allocate memory.
const maxFrameSize = 64 << 20

// maxHeaderSize bounds the encoded header. Headers hold scalar fields
// plus bounded collections (ReadPages offsets, slab/address tables); a
// larger claim is corruption.
const maxHeaderSize = 1 << 20

// maxPooledBuf caps what the buffer pools retain. Oversized buffers are
// dropped back to the allocator instead of pinning pool memory.
const maxPooledBuf = LogRegionSize + 4096

// hdrPool recycles prefix+header encode scratch and header decode
// scratch; headers are tens to hundreds of bytes, so the steady-state
// wire path never allocates for them.
var hdrPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// payloadPool recycles the server's payload staging buffers (inbound
// Write bodies, outbound Read/ReadPages images).
var payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// vecPool recycles the net.Buffers scratch assembled for each writev.
var vecPool = sync.Pool{New: func() any { b := make(net.Buffers, 0, 8); return &b }}

// getPayloadBuf returns a pooled n-byte buffer and its pool handle.
func getPayloadBuf(n int) (*[]byte, []byte) {
	bp := payloadPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp, (*bp)[:n]
}

// putPayloadBuf returns a staging buffer to the pool.
func putPayloadBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		payloadPool.Put(bp)
	}
}

// writeFrameVec assembles the frame prefix around an already-encoded
// header buffer b (which must start with framePrefixLen reserved bytes)
// and ships header + payload slices with a single scatter-gather write.
// On a *net.TCPConn, net.Buffers becomes one writev; payload bytes go
// from their owning arena to the kernel untouched. Returns bytes
// written.
func writeFrameVec(w io.Writer, b []byte, payload [][]byte) (int, error) {
	payLen := 0
	for _, p := range payload {
		payLen += len(p)
	}
	if payLen > maxFrameSize {
		return 0, fmt.Errorf("cluster: frame payload of %d bytes exceeds limit", payLen)
	}
	if hdrLen := len(b) - framePrefixLen; hdrLen > maxHeaderSize {
		return 0, fmt.Errorf("cluster: frame header of %d bytes exceeds limit", hdrLen)
	}
	binary.BigEndian.PutUint32(b[4:8], uint32(len(b)-framePrefixLen))
	binary.BigEndian.PutUint32(b[8:12], uint32(payLen))
	if payLen == 0 {
		return w.Write(b)
	}
	vp := vecPool.Get().(*net.Buffers)
	bufs := append((*vp)[:0], b)
	for _, p := range payload {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	*vp = bufs
	n, err := bufs.WriteTo(w)
	// WriteTo consumed the local slice; clear the retained backing array
	// so pooled scratch does not pin payload arenas.
	for i := range *vp {
		(*vp)[i] = nil
	}
	*vp = (*vp)[:0]
	vecPool.Put(vp)
	return int(n), err
}

// framePrefix starts an encode buffer: magic, version, kind, and
// placeholder length fields that writeFrameVec patches.
func framePrefix(b []byte, kind byte) []byte {
	return append(b, frameMagic0, frameMagic1, frameVersion, kind,
		0, 0, 0, 0, 0, 0, 0, 0)
}

// writeRequestFrame encodes req's header and ships it with the given
// payload slices (req.Data is NOT implicit — callers pass it, or a
// scatter list replacing it). Returns bytes written.
func writeRequestFrame(w io.Writer, req *Request, payload ...[]byte) (int, error) {
	kb, ok := kindBytes[req.Kind]
	if !ok {
		return 0, fmt.Errorf("cluster: unknown request kind %q", req.Kind)
	}
	bp := hdrPool.Get().(*[]byte)
	b := appendRequestHeader(framePrefix((*bp)[:0], kb), req)
	*bp = b
	n, err := writeFrameVec(w, b, payload)
	if cap(*bp) <= maxPooledBuf {
		hdrPool.Put(bp)
	}
	return n, err
}

// writeResponseFrame encodes resp's header and ships it with the given
// payload slices. Returns bytes written.
func writeResponseFrame(w io.Writer, resp *Response, payload ...[]byte) (int, error) {
	bp := hdrPool.Get().(*[]byte)
	b := appendResponseHeader(framePrefix((*bp)[:0], kindResponse), resp)
	*bp = b
	n, err := writeFrameVec(w, b, payload)
	if cap(*bp) <= maxPooledBuf {
		hdrPool.Put(bp)
	}
	return n, err
}

// readFrameHeader reads one frame's prefix and header. The returned hdr
// aliases *scratch (grown as needed); payLen bytes of payload remain on
// the stream for the caller to place. A clean close at a frame boundary
// returns io.EOF; truncation, a bad magic (e.g. a legacy gob-framed
// peer), or a nonsensical length returns a descriptive error.
func readFrameHeader(r io.Reader, scratch *[]byte) (kind byte, hdr []byte, payLen int, err error) {
	var pre [framePrefixLen]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("cluster: read frame prefix: %w", err)
	}
	if pre[0] != frameMagic0 || pre[1] != frameMagic1 {
		return 0, nil, 0, fmt.Errorf(
			"cluster: bad frame magic %02x%02x: peer does not speak the kw wire protocol (legacy gob-framed peer?)",
			pre[0], pre[1])
	}
	if pre[2] != frameVersion {
		return 0, nil, 0, fmt.Errorf("cluster: wire version mismatch: peer speaks v%d, this build v%d",
			pre[2], frameVersion)
	}
	kind = pre[3]
	hdrLen := binary.BigEndian.Uint32(pre[4:8])
	pl := binary.BigEndian.Uint32(pre[8:12])
	if hdrLen > maxHeaderSize {
		return 0, nil, 0, fmt.Errorf("cluster: bad frame header length %d", hdrLen)
	}
	if pl > maxFrameSize {
		return 0, nil, 0, fmt.Errorf("cluster: bad frame payload length %d", pl)
	}
	if cap(*scratch) < int(hdrLen) {
		*scratch = make([]byte, hdrLen)
	}
	hdr = (*scratch)[:hdrLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, 0, fmt.Errorf("cluster: truncated frame header (want %d bytes): %w", hdrLen, err)
	}
	return kind, hdr, int(pl), nil
}

// readPayloadInto scatters a frame's payLen payload bytes into dsts in
// order. The destination lengths must sum to exactly payLen — the frame
// says how many bytes follow, and landing them anywhere else would
// desynchronize the stream.
func readPayloadInto(r io.Reader, payLen int, dsts ...[]byte) error {
	total := 0
	for _, d := range dsts {
		total += len(d)
	}
	if total != payLen {
		return fmt.Errorf("cluster: frame payload is %d bytes, destination holds %d", payLen, total)
	}
	for _, d := range dsts {
		if len(d) == 0 {
			continue
		}
		if _, err := io.ReadFull(r, d); err != nil {
			return fmt.Errorf("cluster: truncated frame payload (want %d bytes): %w", payLen, err)
		}
	}
	return nil
}

// discardPayload drains n payload bytes the receiver refused (bad
// header, refused sink), keeping the stream framed so the connection can
// carry an error response instead of being torn down.
func discardPayload(r io.Reader, n int) error {
	if n <= 0 {
		return nil
	}
	if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
		return fmt.Errorf("cluster: draining refused payload: %w", err)
	}
	return nil
}
