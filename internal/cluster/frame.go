package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// Wire framing for the TCP protocol: every message is a 4-byte big-endian
// length followed by that many bytes of standalone gob. Self-contained
// frames (a fresh encoder per message) cost a few descriptor bytes each,
// but they keep a long-lived connection restartable at any frame boundary
// and make corrupt or truncated input fail fast with an error instead of
// desynchronizing a stateful gob stream.

// maxFrameSize bounds a single frame. The largest legitimate payloads are
// cache-line logs (LogRegionSize, 4MB) and bulk writes; anything beyond
// this is treated as corruption rather than a request to allocate memory.
const maxFrameSize = 64 << 20

// Buffer pools for the frame codec. Every round trip used to allocate a
// fresh bytes.Buffer on encode and a fresh payload slice on decode;
// pooling both keeps the steady-state wire path off the garbage
// collector (large buffers — a full cache-line log is LogBytes — are
// worth recycling most of all). Oversized buffers are dropped back to
// the allocator instead of pinning pool memory.
const maxPooledBuf = LogRegionSize + 4096

var frameEncPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

var frameDecPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// writeFrame gob-encodes v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	buf := frameEncPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			frameEncPool.Put(buf)
		}
	}()
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	b := buf.Bytes()
	if len(b)-4 > maxFrameSize {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(b)-4)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame and gob-decodes it into v.
// A clean close at a frame boundary returns io.EOF; truncation or a
// nonsensical length returns a descriptive error. The scratch payload
// buffer is pooled; gob copies decoded fields out of it, so it never
// escapes into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("cluster: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameSize {
		return fmt.Errorf("cluster: bad frame length %d", n)
	}
	bp := frameDecPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	payload := (*bp)[:n]
	defer func() {
		if cap(*bp) <= maxPooledBuf {
			frameDecPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("cluster: truncated frame (want %d bytes): %w", n, err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	return nil
}
