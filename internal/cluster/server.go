package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"kona/internal/slab"
	"kona/internal/telemetry"
)

// serverMetrics is a daemon's pre-resolved telemetry: one request counter
// per RPC kind plus an error counter, per-kind wire-volume counters
// (tx_bytes/rx_bytes) and the payload-copies counter backing the
// bytes-copied-per-op guard (make bench-wire), resolved once at serve
// time so the handler path never touches the registry's map lock. nil
// disables.
type serverMetrics struct {
	served  map[string]*telemetry.Counter
	txBytes map[string]*telemetry.Counter
	rxBytes map[string]*telemetry.Counter
	// payloadCopies counts payload bytes staged through an intermediate
	// buffer on their way between the wire and their true destination.
	// The zero-copy paths (WriteLog into the log region) keep it at 0;
	// Read/ReadPages/Write count one staging copy through the locked
	// pool accessors.
	payloadCopies *telemetry.Counter
	errors        *telemetry.Counter
	trace         *telemetry.Trace
}

func newServerMetrics(reg *telemetry.Registry, role string) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		served:        make(map[string]*telemetry.Counter, len(rpcKinds)),
		txBytes:       make(map[string]*telemetry.Counter, len(rpcKinds)),
		rxBytes:       make(map[string]*telemetry.Counter, len(rpcKinds)),
		payloadCopies: reg.Counter("cluster." + role + ".payload_copies"),
		errors:        reg.Counter("cluster." + role + ".errors"),
		trace:         reg.Trace(),
	}
	for _, kind := range rpcKinds {
		m.served[kind] = reg.Counter("cluster." + role + ".served." + kind)
		m.txBytes[kind] = reg.Counter("cluster." + role + ".tx_bytes." + kind)
		m.rxBytes[kind] = reg.Counter("cluster." + role + ".rx_bytes." + kind)
	}
	return m
}

// record counts one handled request; unknown kinds count as errors only.
func (m *serverMetrics) record(kind string, resp *Response) {
	if m == nil {
		return
	}
	m.served[kind].Inc()
	if resp.Err != "" {
		m.errors.Inc()
	}
}

// countWire records one exchange's request/response wire volume.
func (m *serverMetrics) countWire(kind string, rx, tx int) {
	if m == nil {
		return
	}
	m.rxBytes[kind].Add(uint64(rx))
	m.txBytes[kind].Add(uint64(tx))
}

// countCopies records payload bytes that took an intermediate staging
// copy on the server.
func (m *serverMetrics) countCopies(n int) {
	if m == nil {
		return
	}
	m.payloadCopies.Add(uint64(n))
}

// dedupCache remembers responses to recent identified requests so a
// retried allocation is answered with its original result instead of
// re-executed — at-most-once semantics for AllocSlab when a response is
// lost in flight. Bounded FIFO; old entries age out long after any
// client's retry window has closed.
type dedupCache struct {
	mu    sync.Mutex
	byID  map[uint64]*Response
	order []uint64
	cap   int
}

func newDedupCache(capacity int) *dedupCache {
	return &dedupCache{byID: make(map[uint64]*Response), cap: capacity}
}

func (d *dedupCache) get(id uint64) (*Response, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.byID[id]
	return r, ok
}

func (d *dedupCache) put(id uint64, r *Response) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byID[id]; dup {
		return
	}
	for len(d.order) >= d.cap {
		delete(d.byID, d.order[0])
		d.order = d.order[1:]
	}
	d.byID[id] = r
	d.order = append(d.order, id)
}

// ControllerServer exposes a Controller over TCP.
type ControllerServer struct {
	ctrl  *Controller
	l     net.Listener
	conns *connSet
	dedup *dedupCache
	m     *serverMetrics
	nodes *telemetry.Gauge
	// reg backs the per-node cluster.load.node.<id>.* metrics; the
	// node-id set is open, so handles resolve lazily per report (load
	// reports are control-path, one per node per interval).
	reg *telemetry.Registry

	mu    sync.Mutex
	addrs map[int]string // node id -> TCP address
}

// ServeController starts a controller daemon on addr (":0" for ephemeral)
// and returns the server. Close stops it.
func ServeController(ctrl *Controller, addr string) (*ControllerServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return ServeControllerOn(ctrl, l), nil
}

// ServeControllerOn starts a controller daemon on an existing listener —
// the hook the fault-injection harness uses to interpose FaultListener.
func ServeControllerOn(ctrl *Controller, l net.Listener) *ControllerServer {
	return ServeControllerOnWith(ctrl, l, nil)
}

// ServeControllerOnWith is ServeControllerOn reporting into a telemetry
// registry: per-kind served and wire-volume counters, an error counter, a
// registered-node gauge, and registration/allocation trace events. nil
// disables.
func ServeControllerOnWith(ctrl *Controller, l net.Listener, reg *telemetry.Registry) *ControllerServer {
	s := &ControllerServer{
		ctrl:  ctrl,
		l:     l,
		conns: newConnSet(),
		dedup: newDedupCache(4096),
		m:     newServerMetrics(reg, "controller"),
		nodes: reg.Gauge("cluster.controller.nodes"),
		reg:   reg,
		addrs: make(map[int]string),
	}
	// Arbitrate rejoins and failure reports by pinging the node's daemon
	// over the wire (falling back to the in-process flag when no address
	// is known — e.g. tests registering nodes directly).
	ctrl.SetProber(s.probeNode)
	// Lease fences must land on the real memnode daemons, not the
	// controller's bookkeeping mirrors (in TCP mode c.nodes are capacity
	// shadows): push them over the wire like the prober does.
	ctrl.SetLeaseFencer(s.fenceMember)
	go serve(l, s.conns, s)
	return s
}

// fenceMember pushes one lease fence to the daemon hosting m. A member
// whose address is unknown (test-registered in-process node) falls back
// to the controller's node mirror.
func (s *ControllerServer) fenceMember(m slab.Slab, holder uint64) error {
	s.mu.Lock()
	addr, ok := s.addrs[m.Node]
	s.mu.Unlock()
	if !ok {
		return s.ctrl.fenceLocal(m, holder)
	}
	_, err := roundTrip(addr, &Request{
		Kind:    msgLeaseFence,
		Offset:  m.RemoteOff,
		Size:    m.Size,
		Epoch:   m.Epoch,
		Runtime: holder,
	})
	return err
}

// probeNode is the TCP liveness check: ping the daemon address the node
// registered with.
func (s *ControllerServer) probeNode(id int, n *MemoryNode) bool {
	s.mu.Lock()
	addr, ok := s.addrs[id]
	s.mu.Unlock()
	if !ok {
		return !n.Failed()
	}
	return pingAddr(addr, time.Second) == nil
}

// pingAddr performs one framed ping over a throwaway connection with a
// hard deadline — the probe must return promptly even against a
// half-dead peer.
func pingAddr(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := writeRequestFrame(conn, &Request{Kind: msgPing, ID: nextReqID()}); err != nil {
		return err
	}
	var resp Response
	if _, err := readResponseFrame(conn, &resp, nil); err != nil {
		return err
	}
	return resp.errOf()
}

// NodeAddr returns the daemon address a node registered with — the
// repair engine's transport resolver.
func (s *ControllerServer) NodeAddr(id int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.addrs[id]
	return addr, ok
}

// Addr returns the listening address.
func (s *ControllerServer) Addr() string { return s.l.Addr().String() }

// Close stops the server and tears down its live connections.
func (s *ControllerServer) Close() error {
	err := s.l.Close()
	s.conns.closeAll()
	return err
}

// Shutdown drains the daemon gracefully: stop accepting, let in-flight
// RPCs finish, then close everything. Connections still busy past the
// grace budget are closed hard. It returns the number of connections
// that were live when the drain began.
func (s *ControllerServer) Shutdown(grace time.Duration) int {
	s.l.Close()
	return s.conns.drain(grace)
}

// payloadSink implements connHandler. Controller RPCs carry no payload;
// a peer that sends one anyway gets it staged and ignored, so the
// request can still be answered with a proper error instead of a torn
// connection.
func (s *ControllerServer) payloadSink(req *Request, n int) ([]byte, func(), error) {
	return stagePayload(n)
}

// countWire implements connHandler.
func (s *ControllerServer) countWire(kind string, rx, tx int) { s.m.countWire(kind, rx, tx) }

// serveReq implements connHandler.
func (s *ControllerServer) serveReq(req *Request) (*Response, func()) {
	return s.handle(req), nil
}

func (s *ControllerServer) handle(req *Request) *Response {
	// AllocSlab mutates node state and is retried by clients; answer a
	// replayed request with its original slab rather than carving twice.
	if req.Kind == msgAllocSlab && req.ID != 0 {
		if resp, ok := s.dedup.get(req.ID); ok {
			if s.m != nil {
				s.m.trace.Emit("controller.dedup", fmt.Sprintf("alloc-slab id=%d replayed", req.ID))
			}
			s.m.record(req.Kind, resp)
			return resp
		}
	}
	resp := s.dispatch(req)
	if req.Kind == msgAllocSlab && req.ID != 0 {
		s.dedup.put(req.ID, resp)
	}
	s.m.record(req.Kind, resp)
	if req.Kind == msgRegisterNode && resp.Err == "" {
		// Set (not Inc): a crash-rejoin re-registers the same id, which
		// must not double-count.
		s.nodes.Set(int64(s.ctrl.Nodes()))
		if s.m != nil {
			s.m.trace.Emit("controller.register", fmt.Sprintf("node=%d capacity=%d addr=%s",
				req.NodeID, req.Capacity, req.Addr))
		}
	}
	return resp
}

func (s *ControllerServer) dispatch(req *Request) *Response {
	switch req.Kind {
	case msgRegisterNode:
		n := NewMemoryNode(req.NodeID, req.Capacity)
		// Register probes any incumbent via probeNode, which pings the
		// OLD daemon address (addrs is updated only after admission) —
		// a live holder rejects the duplicate, a dead one is expelled
		// and the newcomer admitted under a higher incarnation.
		if err := s.ctrl.Register(n); err != nil {
			return &Response{Err: err.Error()}
		}
		s.mu.Lock()
		s.addrs[req.NodeID] = req.Addr
		s.mu.Unlock()
		return &Response{Epoch: n.Incarnation()}
	case msgAllocSlab:
		if req.Replicas > 1 {
			slabs, err := s.ctrl.AllocReplicatedSlab(req.Size, req.Replicas)
			if err != nil {
				return &Response{Err: err.Error()}
			}
			return &Response{Slabs: slabs, Addrs: s.snapshotAddrs()}
		}
		sl, err := s.ctrl.AllocSlab(req.Size)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Slabs: []slab.Slab{sl}, Addrs: s.snapshotAddrs()}
	case msgReleaseSlab:
		err := s.ctrl.ReleaseSlab(slab.Slab{Node: req.NodeID, RemoteOff: req.Offset, Size: req.Size})
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{}
	case msgNodeAddr:
		return &Response{Addrs: s.snapshotAddrs()}
	case msgSlabPlacements:
		members, ok := s.ctrl.Placements(req.SlabID)
		if !ok {
			return &Response{Err: fmt.Sprintf("controller: unknown placement group %d", req.SlabID)}
		}
		return &Response{Slabs: members, Addrs: s.snapshotAddrs(), Epoch: s.ctrl.PlacementEpoch()}
	case msgReportFailure:
		removed := s.ctrl.ReportNodeFailure(req.NodeID)
		resp := &Response{Epoch: s.ctrl.PlacementEpoch()}
		if removed {
			resp.Entries = 1
		}
		return resp
	case msgReportLoad:
		sample, err := decodeLoadSample(req.Data)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		s.ctrl.ReportLoad(req.NodeID, sample)
		s.publishLoad(req.NodeID)
		return &Response{}
	case msgLeaseAcquire:
		g, err := s.ctrl.AcquireLease(req.SlabID, req.Runtime, req.Length, time.Duration(req.Size))
		return s.leaseResponse(g, err)
	case msgLeaseRenew:
		g, err := s.ctrl.RenewLease(req.SlabID, req.Runtime, req.Length, time.Duration(req.Size))
		return s.leaseResponse(g, err)
	case msgLeaseRelease:
		if err := s.ctrl.ReleaseLease(req.SlabID, req.Runtime); err != nil {
			return &Response{Err: err.Error()}
		}
		s.publishLeases()
		return &Response{}
	case msgLeaseInvalidate:
		g, err := s.ctrl.PublishLease(req.SlabID, req.Runtime)
		return s.leaseResponse(g, err)
	case msgPing:
		return &Response{Epoch: s.ctrl.PlacementEpoch()}
	default:
		return &Response{Err: fmt.Sprintf("controller: unknown request %q", req.Kind)}
	}
}

// leaseResponse packs a lease grant: Epoch carries the lease epoch, and
// the payload is [version u64][granted TTL ns u64].
func (s *ControllerServer) leaseResponse(g LeaseGrant, err error) *Response {
	s.publishLeases()
	if err != nil {
		return &Response{Err: err.Error()}
	}
	data := appendU64(make([]byte, 0, 16), g.Version)
	data = appendU64(data, uint64(g.TTL))
	return &Response{Epoch: g.Epoch, Data: data}
}

// publishLeases surfaces the lease directory's counters on /metrics.
func (s *ControllerServer) publishLeases() {
	if s.reg == nil {
		return
	}
	ls := s.ctrl.LeaseSnapshot()
	s.reg.Counter("cluster.lease.grants").Store(ls.Grants)
	s.reg.Counter("cluster.lease.rejects").Store(ls.Rejects)
	s.reg.Counter("cluster.lease.expirations").Store(ls.Expirations)
	s.reg.Counter("cluster.lease.takeovers").Store(ls.Takeovers)
	s.reg.Counter("cluster.lease.publishes").Store(ls.Publishes)
	s.reg.Counter("cluster.lease.fence_errors").Store(ls.FenceErrors)
	s.reg.Gauge("cluster.lease.writers").Set(int64(ls.Writers))
	s.reg.Gauge("cluster.lease.readers").Set(int64(ls.Readers))
}

// publishLoad surfaces one node's load-map entry through /metrics:
// cluster.load.node.<id>.score and .pending gauges plus absolute
// traffic counters — what kona-kvload scrapes to print the per-memnode
// op/byte distribution.
func (s *ControllerServer) publishLoad(node int) {
	if s.reg == nil {
		return
	}
	for _, nl := range s.ctrl.LoadMap() {
		if nl.Node != node {
			continue
		}
		prefix := fmt.Sprintf("cluster.load.node.%d.", nl.Node)
		s.reg.Gauge(prefix + "score").Set(int64(nl.Score))
		s.reg.Gauge(prefix + "pending").Set(int64(nl.Pending))
		s.reg.Counter(prefix + "read_ops").Store(nl.Totals.ReadOps)
		s.reg.Counter(prefix + "write_ops").Store(nl.Totals.WriteOps)
		s.reg.Counter(prefix + "read_bytes").Store(nl.Totals.ReadBytes)
		s.reg.Counter(prefix + "write_bytes").Store(nl.Totals.WriteBytes)
		return
	}
}

func (s *ControllerServer) snapshotAddrs() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.addrs))
	for k, v := range s.addrs {
		out[k] = v
	}
	return out
}

// MemoryNodeServer exposes a MemoryNode's pool over TCP: remote reads,
// remote writes, and the cache-line log receiver.
type MemoryNodeServer struct {
	node  *MemoryNode
	l     net.Listener
	conns *connSet
	m     *serverMetrics
	// Writeback-volume counters (nil handles when metrics are disabled).
	logEntries, logBytes, readBytes, writeBytes *telemetry.Counter
	// Scatter-gather read counters: pages and bytes served through the
	// batched ReadPages path.
	readPagesPages, readPagesBytes *telemetry.Counter

	// logMu serializes WriteLog handlers: the node has a single
	// log-receive region, and concurrent RPCs must not interleave their
	// payloads landing in it. It is taken in payloadSink (the wire bytes
	// are ReadFull'd straight into the region — the zero-copy receive
	// path) and held until the request has been handled.
	logMu sync.Mutex
}

// ServeMemoryNode starts a memory-node daemon on addr.
func ServeMemoryNode(node *MemoryNode, addr string) (*MemoryNodeServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return ServeMemoryNodeOn(node, l), nil
}

// ServeMemoryNodeOn starts a memory-node daemon on an existing listener —
// the hook the fault-injection harness uses to interpose FaultListener.
func ServeMemoryNodeOn(node *MemoryNode, l net.Listener) *MemoryNodeServer {
	return ServeMemoryNodeOnWith(node, l, nil)
}

// ServeMemoryNodeOnWith is ServeMemoryNodeOn reporting into a telemetry
// registry: per-kind served and wire-volume counters plus
// read/write/log volume counters. nil disables.
func ServeMemoryNodeOnWith(node *MemoryNode, l net.Listener, reg *telemetry.Registry) *MemoryNodeServer {
	s := &MemoryNodeServer{
		node:           node,
		l:              l,
		conns:          newConnSet(),
		m:              newServerMetrics(reg, "memnode"),
		logEntries:     reg.Counter("cluster.memnode.log_entries"),
		logBytes:       reg.Counter("cluster.memnode.log_bytes"),
		readBytes:      reg.Counter("cluster.memnode.read_bytes"),
		writeBytes:     reg.Counter("cluster.memnode.write_bytes"),
		readPagesPages: reg.Counter("cluster.readpages.pages"),
		readPagesBytes: reg.Counter("cluster.readpages.bytes"),
	}
	go serve(l, s.conns, s)
	return s
}

// Addr returns the listening address.
func (s *MemoryNodeServer) Addr() string { return s.l.Addr().String() }

// Close stops the server and tears down its live connections.
func (s *MemoryNodeServer) Close() error {
	err := s.l.Close()
	s.conns.closeAll()
	return err
}

// Shutdown drains the daemon gracefully: stop accepting, let in-flight
// RPCs (including a WriteLog mid-payload) finish, then close everything.
// Connections still busy past the grace budget are closed hard. It
// returns the number of connections live when the drain began.
func (s *MemoryNodeServer) Shutdown(grace time.Duration) int {
	s.l.Close()
	return s.conns.drain(grace)
}

// payloadSink implements connHandler: WriteLog payloads land directly in
// the node's log-receive region — the same bytes UnpackLog scatters from
// — under logMu, so the log body crosses the server without a single
// intermediate copy. Everything else stages through a pooled buffer.
func (s *MemoryNodeServer) payloadSink(req *Request, n int) ([]byte, func(), error) {
	if req.Kind == msgWriteLog {
		logBuf := s.node.logMR.Bytes()
		if n > len(logBuf) {
			return nil, nil, fmt.Errorf("memnode: log too large")
		}
		s.logMu.Lock()
		return logBuf[:n], s.logMu.Unlock, nil
	}
	return stagePayload(n)
}

// countWire implements connHandler.
func (s *MemoryNodeServer) countWire(kind string, rx, tx int) { s.m.countWire(kind, rx, tx) }

// serveReq implements connHandler.
func (s *MemoryNodeServer) serveReq(req *Request) (*Response, func()) {
	resp, done := s.dispatch(req)
	s.m.record(req.Kind, resp)
	return resp, done
}

func (s *MemoryNodeServer) dispatch(req *Request) (*Response, func()) {
	// Epoch fence (DESIGN.md §10): a data RPC stamped with an incarnation
	// this node instance does not hold is from a peer whose placements
	// predate a crash-restart. Reject it as a RemoteError — delivered and
	// processed, never retried — so the stale peer refreshes instead of
	// corrupting the new incarnation's pool.
	switch req.Kind {
	case msgRead, msgReadPages, msgWrite, msgWriteLog,
		msgCaptureStart, msgCaptureDrain, msgCaptureStop,
		msgSealExtent, msgUnsealExtent, msgLeaseFence:
		if req.Epoch != 0 {
			if inc := s.node.Incarnation(); inc != 0 && inc != req.Epoch {
				return &Response{Err: fmt.Sprintf(
					"memnode %d: epoch fence: request for incarnation %d, node is %d",
					s.node.ID(), req.Epoch, inc)}, nil
			}
		}
	}
	switch req.Kind {
	case msgRead:
		if req.Length <= 0 || req.Length > maxFrameSize {
			return &Response{Err: fmt.Sprintf("memnode: bad read length %d", req.Length)}, nil
		}
		bp, buf := getPayloadBuf(req.Length)
		if err := s.node.ReadAt(req.Offset, buf); err != nil {
			putPayloadBuf(bp)
			return &Response{Err: err.Error()}, nil
		}
		s.m.countCopies(len(buf))
		s.readBytes.Add(uint64(req.Length))
		// The response payload aliases the pooled staging buffer; it is
		// recycled only after the frame has hit the wire (the done hook).
		return &Response{Data: buf}, func() { putPayloadBuf(bp) }
	case msgReadPages:
		// Scatter-gather read: each offset names one page-sized span; the
		// payloads are concatenated in request order so the whole batch
		// costs one frame each way.
		if req.Length <= 0 || len(req.Offsets) == 0 {
			return &Response{Err: "memnode: empty read-pages request"}, nil
		}
		total := req.Length * len(req.Offsets)
		if total > maxFrameSize/2 {
			return &Response{Err: "memnode: read-pages batch too large"}, nil
		}
		bp, data := getPayloadBuf(total)
		for i, off := range req.Offsets {
			if err := s.node.ReadAt(off, data[i*req.Length:(i+1)*req.Length]); err != nil {
				putPayloadBuf(bp)
				return &Response{Err: err.Error()}, nil
			}
		}
		s.m.countCopies(total)
		s.readBytes.Add(uint64(total))
		s.readPagesPages.Add(uint64(len(req.Offsets)))
		s.readPagesBytes.Add(uint64(total))
		return &Response{Data: data}, func() { putPayloadBuf(bp) }
	case msgWrite:
		if err := s.node.WriteAtFrom(req.Runtime, req.Offset, req.Data); err != nil {
			return &Response{Err: err.Error()}, nil
		}
		s.m.countCopies(len(req.Data))
		s.writeBytes.Add(uint64(len(req.Data)))
		return &Response{}, nil
	case msgWriteLog:
		// The payload already sits in the log region (payloadSink holds
		// logMu until this handler returns); all that is left is to run
		// the receiver over it.
		entries, _, err := s.node.UnpackLogFrom(req.Runtime, len(req.Data))
		if err != nil {
			return &Response{Err: err.Error()}, nil
		}
		s.logEntries.Add(uint64(entries))
		s.logBytes.Add(uint64(len(req.Data)))
		if s.m != nil {
			s.m.trace.Emit("memnode.writeback",
				fmt.Sprintf("node=%d entries=%d bytes=%d", s.node.ID(), entries, len(req.Data)))
		}
		return &Response{Entries: entries}, nil
	case msgCaptureStart:
		pageLen := uint64(req.Length)
		s.node.StartCapture(req.Offset, req.Size, pageLen)
		return &Response{}, nil
	case msgCaptureDrain:
		offs := s.node.DrainCapture(req.Offset, req.Size)
		if len(offs) == 0 {
			return &Response{}, nil
		}
		data := make([]byte, 0, len(offs)*8)
		for _, off := range offs {
			data = appendU64(data, off)
		}
		return &Response{Data: data, Entries: len(offs)}, nil
	case msgCaptureStop:
		s.node.StopCapture(req.Offset, req.Size)
		return &Response{}, nil
	case msgSealExtent:
		s.node.Seal(req.Offset, req.Size)
		return &Response{}, nil
	case msgUnsealExtent:
		s.node.Unseal(req.Offset, req.Size)
		return &Response{}, nil
	case msgLeaseFence:
		s.node.LeaseFence(req.Offset, req.Size, req.Runtime)
		return &Response{}, nil
	case msgPing:
		return &Response{}, nil
	default:
		return &Response{Err: fmt.Sprintf("memnode: unknown request %q", req.Kind)}, nil
	}
}
