package cluster

import (
	"fmt"
	"net"
	"sync"

	"kona/internal/slab"
)

// ControllerServer exposes a Controller over TCP.
type ControllerServer struct {
	ctrl *Controller
	l    net.Listener

	mu    sync.Mutex
	addrs map[int]string // node id -> TCP address
}

// ServeController starts a controller daemon on addr (":0" for ephemeral)
// and returns the server. Close stops it.
func ServeController(ctrl *Controller, addr string) (*ControllerServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &ControllerServer{ctrl: ctrl, l: l, addrs: make(map[int]string)}
	go serve(l, s.handle)
	return s, nil
}

// Addr returns the listening address.
func (s *ControllerServer) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *ControllerServer) Close() error { return s.l.Close() }

func (s *ControllerServer) handle(req *Request) *Response {
	switch req.Kind {
	case msgRegisterNode:
		n := NewMemoryNode(req.NodeID, req.Capacity)
		if err := s.ctrl.Register(n); err != nil {
			return &Response{Err: err.Error()}
		}
		s.mu.Lock()
		s.addrs[req.NodeID] = req.Addr
		s.mu.Unlock()
		return &Response{}
	case msgAllocSlab:
		if req.Replicas > 1 {
			slabs, err := s.ctrl.AllocReplicatedSlab(req.Size, req.Replicas)
			if err != nil {
				return &Response{Err: err.Error()}
			}
			return &Response{Slabs: slabs, Addrs: s.snapshotAddrs()}
		}
		sl, err := s.ctrl.AllocSlab(req.Size)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Slabs: []slab.Slab{sl}, Addrs: s.snapshotAddrs()}
	case msgReleaseSlab:
		err := s.ctrl.ReleaseSlab(slab.Slab{Node: req.NodeID, RemoteOff: req.Offset, Size: req.Size})
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{}
	case msgNodeAddr:
		return &Response{Addrs: s.snapshotAddrs()}
	case msgPing:
		return &Response{}
	default:
		return &Response{Err: fmt.Sprintf("controller: unknown request %q", req.Kind)}
	}
}

func (s *ControllerServer) snapshotAddrs() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.addrs))
	for k, v := range s.addrs {
		out[k] = v
	}
	return out
}

// MemoryNodeServer exposes a MemoryNode's pool over TCP: remote reads,
// remote writes, and the cache-line log receiver.
type MemoryNodeServer struct {
	node *MemoryNode
	l    net.Listener
}

// ServeMemoryNode starts a memory-node daemon on addr.
func ServeMemoryNode(node *MemoryNode, addr string) (*MemoryNodeServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &MemoryNodeServer{node: node, l: l}
	go serve(l, s.handle)
	return s, nil
}

// Addr returns the listening address.
func (s *MemoryNodeServer) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *MemoryNodeServer) Close() error { return s.l.Close() }

func (s *MemoryNodeServer) handle(req *Request) *Response {
	pool := s.node.PoolBytes()
	switch req.Kind {
	case msgRead:
		if req.Offset+uint64(req.Length) > uint64(len(pool)) {
			return &Response{Err: "memnode: read out of range"}
		}
		data := make([]byte, req.Length)
		copy(data, pool[req.Offset:])
		return &Response{Data: data}
	case msgWrite:
		if req.Offset+uint64(len(req.Data)) > uint64(len(pool)) {
			return &Response{Err: "memnode: write out of range"}
		}
		copy(pool[req.Offset:], req.Data)
		return &Response{}
	case msgWriteLog:
		logBuf := s.node.logMR.Bytes()
		if len(req.Data) > len(logBuf) {
			return &Response{Err: "memnode: log too large"}
		}
		copy(logBuf, req.Data)
		entries, _, err := s.node.UnpackLog(len(req.Data))
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Entries: entries}
	case msgPing:
		return &Response{}
	default:
		return &Response{Err: fmt.Sprintf("memnode: unknown request %q", req.Kind)}
	}
}
