package cluster

import (
	"net"
	"testing"
	"time"

	"kona/internal/telemetry"
)

// TestTransportTelemetryCleanPath checks the happy-path numbers: N reads
// over a healthy node produce N read-latency observations, zero retries,
// zero failures, and an in-flight gauge that returns to zero.
func TestTransportTelemetryCleanPath(t *testing.T) {
	reg := telemetry.New(0)
	node := NewMemoryNode(0, 1<<20)
	ns, err := ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	tr := DefaultTransport()
	tr.Metrics = reg
	mc := DialMemoryNodeTransport(ns.Addr(), tr)
	defer mc.Close()

	const n = 25
	for i := 0; i < n; i++ {
		if _, err := mc.Read(0, 64); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if got := s.Histograms["cluster.rpc.read.latency_us"].Count; got != n {
		t.Errorf("read latency observations = %d, want %d", got, n)
	}
	if s.Counters["cluster.rpc.retries"] != 0 || s.Counters["cluster.rpc.failures"] != 0 {
		t.Errorf("clean path recorded retries/failures: %v", s.Counters)
	}
	if s.Counters["cluster.rpc.dials"] == 0 {
		t.Errorf("no dial recorded")
	}
	if got := s.Gauges["cluster.inflight."+ns.Addr()]; got != 0 {
		t.Errorf("in-flight gauge = %d after quiescence, want 0", got)
	}
}

// TestFaultPlanMatchesRetryCounters threads one registry through both
// sides of a seeded fault plan — the injecting listener and the retrying
// client — and checks the books balance: every injected drop surfaces as
// exactly one client-side retry or redial (up to the drops that hit
// connections parked in the idle pool at exit, which nobody observes).
// This turns the chaos suite's implicit "retries hid the faults" behavior
// into checked numbers.
func TestFaultPlanMatchesRetryCounters(t *testing.T) {
	reg := telemetry.New(0)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(inner, FaultConfig{
		Seed:     7,
		DropProb: 0.05,
		Metrics:  reg,
	})
	node := NewMemoryNode(0, 1<<20)
	ns := ServeMemoryNodeOn(node, fl)
	defer ns.Close()

	tr := Transport{
		RequestTimeout: 2 * time.Second,
		MaxRetries:     12,
		BackoffBase:    100 * time.Microsecond,
		BackoffMax:     2 * time.Millisecond,
		PoolSize:       2,
		Seed:           7,
		Metrics:        reg,
	}
	mc := DialMemoryNodeTransport(ns.Addr(), tr)
	defer mc.Close()

	payload := []byte("telemetry-chaos")
	for i := 0; i < 300; i++ {
		off := uint64(i % 64 * 64)
		if err := mc.Write(off, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		data, err := mc.Read(off, len(payload))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(data) != string(payload) {
			t.Fatalf("read %d corrupted under faults", i)
		}
	}

	s := reg.Snapshot()
	drops := s.Counters["faultconn.drops"]
	retries := s.Counters["cluster.rpc.retries"]
	redials := s.Counters["cluster.rpc.redials"]
	if drops == 0 {
		t.Fatalf("seeded fault plan injected no drops — plan dead, test vacuous")
	}
	recovered := retries + redials
	// One injected drop fails at most one in-flight attempt, and with a
	// deep retry budget every failed attempt is retried or redialed, so
	// recovered <= drops, short only by drops that hit idle pooled
	// connections after the last request touched them.
	if recovered > drops {
		t.Errorf("recovered %d (retries %d + redials %d) > injected drops %d",
			recovered, retries, redials, drops)
	}
	if slack := uint64(tr.PoolSize + 1); recovered+slack < drops {
		t.Errorf("recovered %d (retries %d + redials %d) too low for %d injected drops",
			recovered, retries, redials, drops)
	}
	if s.Counters["cluster.rpc.failures"] != 0 {
		t.Errorf("requests failed outright despite retry budget: %v", s.Counters)
	}
	// The trace ring carries the retry annotations.
	sawRetry := false
	for _, e := range reg.Trace().Events() {
		if e.Name == "rpc.retry" {
			sawRetry = true
			break
		}
	}
	if retries > 0 && !sawRetry {
		t.Errorf("retries counted but no rpc.retry event in the ring")
	}
}

// TestServerTelemetryCounters checks the daemon-side served/error
// counters and the memnode volume counters.
func TestServerTelemetryCounters(t *testing.T) {
	reg := telemetry.New(0)
	ctrl := NewController()
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cs := ServeControllerOnWith(ctrl, cl, reg)
	defer cs.Close()

	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := NewMemoryNode(3, 1<<20)
	ns := ServeMemoryNodeOnWith(node, nl, reg)
	defer ns.Close()

	cc := DialController(cs.Addr())
	defer cc.Close()
	if err := cc.RegisterNode(3, 1<<20, ns.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cc.AllocSlab(4096); err != nil {
		t.Fatal(err)
	}
	mc := DialMemoryNode(ns.Addr())
	defer mc.Close()
	if err := mc.Write(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Read(0, 256); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		"cluster.controller.served.register-node": 1,
		"cluster.controller.served.alloc-slab":    1,
		"cluster.memnode.served.write":            1,
		"cluster.memnode.served.read":             1,
		"cluster.memnode.write_bytes":             128,
		"cluster.memnode.read_bytes":              256,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauges["cluster.controller.nodes"]; got != 1 {
		t.Errorf("controller.nodes gauge = %d, want 1", got)
	}
	// An out-of-range read is served and counted as an error.
	if _, err := mc.Read(1<<20, 64); err == nil {
		t.Fatalf("out-of-range read succeeded")
	}
	if got := reg.Snapshot().Counters["cluster.memnode.errors"]; got != 1 {
		t.Errorf("memnode.errors = %d, want 1", got)
	}
}

// BenchmarkTelemetryOverheadTCPRead pins the tentpole's hot-path budget
// on the wire layer: MemoryNodeClient.Read over the pooled transport with
// telemetry disabled (nil registry, the default) must stay within 2% of
// the uninstrumented baseline — the disabled path is one pointer check
// per round trip. The "enabled" case shows the real cost of live
// instrumentation for comparison. `make verify` runs the nil case as a
// regression guard.
func BenchmarkTelemetryOverheadTCPRead(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry) {
		node := NewMemoryNode(0, 1<<20)
		ns, err := ServeMemoryNode(node, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ns.Close()
		tr := DefaultTransport()
		tr.Metrics = reg
		mc := DialMemoryNodeTransport(ns.Addr(), tr)
		defer mc.Close()
		if _, err := mc.Read(0, 4096); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mc.Read(0, 4096); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, telemetry.New(0)) })
}
