package cluster

import (
	"fmt"
	"sort"
)

// Load map (DESIGN.md §13): the controller aggregates per-node traffic
// signals — memnode-reported cumulative read/write counters plus
// compute-side pending-eviction gauges — into one score per node. The
// score is an EWMA of the byte delta between consecutive reports, so it
// needs no wall clock (reports arrive on the sweep cadence) and stays
// deterministic in simulation. The placement policy and the migration
// engine both consume it.

// loadEWMAAlpha weights the newest report delta; history decays by
// (1-alpha) per report, so a node cools within a handful of sweeps after
// its traffic moves away.
const loadEWMAAlpha = 0.5

// nodeLoad is one node's scored state.
type nodeLoad struct {
	last    LoadSample // last cumulative counters seen
	score   float64    // EWMA of per-report delta bytes
	pending uint64     // latest compute-side pending gauge
	reports uint64
}

// NodeLoad is the exported snapshot of one node's load-map entry.
type NodeLoad struct {
	Node    int
	Score   float64
	Pending uint64
	Reports uint64
	Totals  LoadSample
}

// ReportLoad folds one load sample for node into the map. Counter fields
// are cumulative; a sample whose counters run backwards (node restart)
// contributes its absolute values as the delta. Samples carrying only
// PendingBytes (compute-side reports) update the gauge without touching
// the EWMA.
func (c *Controller) ReportLoad(node int, s LoadSample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.load == nil {
		c.load = make(map[int]*nodeLoad)
	}
	nl := c.load[node]
	if nl == nil {
		nl = &nodeLoad{}
		c.load[node] = nl
	}
	if counters := s.ReadBytes + s.WriteBytes + s.ReadOps + s.WriteOps; counters > 0 || nl.reports > 0 {
		delta := float64(sub(s.ReadBytes, nl.last.ReadBytes) + sub(s.WriteBytes, nl.last.WriteBytes))
		nl.score = (1-loadEWMAAlpha)*nl.score + loadEWMAAlpha*delta
		nl.last = s
		nl.reports++
	}
	if s.PendingBytes > 0 || nl.pending > 0 {
		nl.pending = s.PendingBytes
	}
}

// sub is a counter-reset-tolerant delta: a counter that ran backwards
// restarted from zero, so the new absolute value IS the delta.
func sub(now, prev uint64) uint64 {
	if now < prev {
		return now
	}
	return now - prev
}

// loadScoreLocked is a node's effective load: traffic EWMA plus the
// compute-side pending backlog (bytes already committed toward it).
func (c *Controller) loadScoreLocked(node int) float64 {
	nl := c.load[node]
	if nl == nil {
		return 0
	}
	return nl.score + float64(nl.pending)
}

// LoadMap snapshots every node's load entry, ordered by id — the
// /metrics and experiment surface.
func (c *Controller) LoadMap() []NodeLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeLoad, 0, len(c.load))
	for id, nl := range c.load {
		out = append(out, NodeLoad{
			Node: id, Score: nl.score, Pending: nl.pending,
			Reports: nl.reports, Totals: nl.last,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// PullNodeLoads scrapes every registered in-process node's cumulative
// counters into the load map — the sim-mode (and single-process) feed
// that replaces the memnode daemons' push RPCs.
func (c *Controller) PullNodeLoads() {
	c.mu.Lock()
	type pair struct {
		id int
		n  *MemoryNode
	}
	nodes := make([]pair, 0, len(c.nodes))
	for id, n := range c.nodes {
		nodes = append(nodes, pair{id, n})
	}
	c.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	for _, p := range nodes {
		c.ReportLoad(p.id, p.n.LoadCounters())
	}
}

// Placement policies.
const (
	// PolicyRR is blind round-robin — the deterministic default; fixed-
	// seed simulation runs are byte-identical to pre-load-map builds.
	PolicyRR = "rr"
	// PolicyLoad places new slabs on the least-loaded nodes (load-map
	// score, then used-capacity fraction, then id), with anti-affinity to
	// nodes already holding a member of the same group.
	PolicyLoad = "load"
)

// SetPlacementPolicy selects how new slab carves pick nodes.
func (c *Controller) SetPlacementPolicy(p string) error {
	switch p {
	case PolicyRR, PolicyLoad:
	default:
		return fmt.Errorf("controller: unknown placement policy %q", p)
	}
	c.mu.Lock()
	c.policy = p
	c.mu.Unlock()
	return nil
}

// PlacementPolicy returns the active policy ("rr" when unset).
func (c *Controller) PlacementPolicy() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy == "" {
		return PolicyRR
	}
	return c.policy
}

// loadOrderLocked returns the registered node ids sorted coldest-first:
// ascending load score, then ascending used-capacity fraction, then id
// (the deterministic tie-break).
func (c *Controller) loadOrderLocked() []int {
	ids := make([]int, 0, len(c.rr))
	ids = append(ids, c.rr...)
	type rank struct {
		score float64
		frac  float64
	}
	ranks := make(map[int]rank, len(ids))
	for _, id := range ids {
		total, used := c.nodes[id].Capacity()
		f := 0.0
		if total > 0 {
			f = float64(used) / float64(total)
		}
		ranks[id] = rank{score: c.loadScoreLocked(id), frac: f}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ranks[ids[i]], ranks[ids[j]]
		if a.score != b.score {
			return a.score < b.score
		}
		if a.frac != b.frac {
			return a.frac < b.frac
		}
		return ids[i] < ids[j]
	})
	return ids
}
