package vm

import "kona/internal/mem"

// TLB models a small fully-associative translation cache with LRU
// replacement. Page-based remote memory pays for TLB misses after
// invalidations and shootdowns; Kona avoids those invalidations entirely
// because its pages never change protection (§4.4).
type TLB struct {
	capacity int
	entries  map[uint64]uint64 // page -> lastUse
	clock    uint64

	hits, misses, flushes uint64
}

// NewTLB returns a TLB holding up to capacity translations.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("vm: TLB capacity must be positive")
	}
	return &TLB{capacity: capacity, entries: make(map[uint64]uint64)}
}

// Lookup translates the page containing a, filling on miss, and reports
// whether it hit.
func (t *TLB) Lookup(a mem.Addr) bool {
	t.clock++
	p := a.Page()
	if _, ok := t.entries[p]; ok {
		t.entries[p] = t.clock
		t.hits++
		return true
	}
	t.misses++
	if len(t.entries) >= t.capacity {
		// Evict LRU.
		var lruPage, lruUse uint64
		first := true
		for page, use := range t.entries {
			if first || use < lruUse {
				lruPage, lruUse = page, use
				first = false
			}
		}
		delete(t.entries, lruPage)
	}
	t.entries[p] = t.clock
	return false
}

// Invalidate drops the translation for the page containing a, as a PTE
// permission change requires.
func (t *TLB) Invalidate(a mem.Addr) {
	delete(t.entries, a.Page())
}

// Flush drops all translations (full shootdown).
func (t *TLB) Flush() {
	t.entries = make(map[uint64]uint64)
	t.flushes++
}

// Stats returns hit/miss/flush counters.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }
