package vm

import (
	"fmt"

	"kona/internal/mem"
)

// Huge-page support. The paper's §2.1 observes that dirty-tracking
// overheads are even higher for 2MB pages, "which first get broken down
// to 4KB pages to decrease the amplification" (citing live-migration
// practice), and §3 argues Kona lets applications keep huge pages for
// translation reach because tracking granularity is decoupled from page
// size. This file models the baseline side of that argument: 2MB
// mappings, their one-entry-per-2MB TLB reach, and demand splitting into
// 4KB PTEs when write tracking needs finer granularity.

// HugePTE is a 2MB page-table entry, possibly split into 4KB children.
type HugePTE struct {
	Present  bool
	Writable bool
	Dirty    bool
	// split, when non-nil, means the huge mapping was broken into 512
	// base-page PTEs (indexed by position within the 2MB region).
	split []*PTE
}

// IsSplit reports whether the mapping was demoted to 4KB PTEs.
func (h *HugePTE) IsSplit() bool { return h.split != nil }

// HugeAddressSpace is an address space mapped with 2MB pages.
type HugeAddressSpace struct {
	pages map[uint64]*HugePTE // keyed by 2MB page index
	stats Stats
	// Splits counts huge-page demotions.
	Splits uint64
}

// NewHugeAddressSpace returns an empty 2MB-page address space.
func NewHugeAddressSpace() *HugeAddressSpace {
	return &HugeAddressSpace{pages: make(map[uint64]*HugePTE)}
}

// Stats returns the event counters.
func (as *HugeAddressSpace) Stats() Stats { return as.stats }

// Map installs huge mappings covering r.
func (as *HugeAddressSpace) Map(r mem.Range, writable bool) {
	if r.Len == 0 {
		return
	}
	for p := r.Start.HugePage(); p <= (r.End() - 1).HugePage(); p++ {
		as.pages[p] = &HugePTE{Present: true, Writable: writable}
	}
}

// Touch performs one access. With an unsplit huge mapping, a
// write-protect fault covers the whole 2MB region — the source of the
// enormous 2MB-tracking amplification of Table 2.
func (as *HugeAddressSpace) Touch(a mem.Addr, write bool) FaultKind {
	h := as.pages[a.HugePage()]
	if h == nil || !h.Present {
		as.stats.MajorFaults++
		return MajorFault
	}
	if h.IsSplit() {
		pte := h.split[a.Page()%512]
		if !pte.Present {
			as.stats.MajorFaults++
			return MajorFault
		}
		pte.Accessed = true
		if write {
			if !pte.Writable {
				as.stats.WPFaults++
				return WriteProtectFault
			}
			pte.Dirty = true
		}
		return NoFault
	}
	if write {
		if !h.Writable {
			as.stats.WPFaults++
			return WriteProtectFault
		}
		h.Dirty = true
	}
	return NoFault
}

// ResolveWPWhole upgrades the whole 2MB page to writable: cheap to
// resolve, but the entire region must later be treated as dirty.
func (as *HugeAddressSpace) ResolveWPWhole(a mem.Addr) error {
	h := as.pages[a.HugePage()]
	if h == nil || !h.Present {
		return fmt.Errorf("vm: huge WP resolve on non-present page %v", a)
	}
	h.Writable = true
	h.Dirty = true
	as.stats.TLBInvalidate++
	return nil
}

// Split demotes the huge mapping containing a into 512 base-page PTEs
// inheriting its protection — the §2.1 mitigation that trades TLB reach
// for tracking granularity. It costs a TLB shootdown (the huge entry must
// leave every TLB).
func (as *HugeAddressSpace) Split(a mem.Addr) error {
	h := as.pages[a.HugePage()]
	if h == nil || !h.Present {
		return fmt.Errorf("vm: split of non-present huge page %v", a)
	}
	if h.IsSplit() {
		return nil
	}
	h.split = make([]*PTE, 512)
	for i := range h.split {
		h.split[i] = &PTE{Present: true, Writable: h.Writable, Dirty: h.Dirty}
	}
	as.Splits++
	as.stats.TLBShootdowns++
	return nil
}

// ResolveWPSplit splits the huge page (if needed) and upgrades only the
// 4KB page containing a.
func (as *HugeAddressSpace) ResolveWPSplit(a mem.Addr) error {
	if err := as.Split(a); err != nil {
		return err
	}
	h := as.pages[a.HugePage()]
	pte := h.split[a.Page()%512]
	pte.Writable = true
	pte.Dirty = true
	as.stats.TLBInvalidate++
	return nil
}

// DirtyBytes returns the dirty-tracked byte count inside r: 2MB per dirty
// unsplit page, 4KB per dirty child PTE — the amplification comparison of
// Table 2's middle column.
func (as *HugeAddressSpace) DirtyBytes(r mem.Range) uint64 {
	if r.Len == 0 {
		return 0
	}
	var total uint64
	for p := r.Start.HugePage(); p <= (r.End() - 1).HugePage(); p++ {
		h := as.pages[p]
		if h == nil {
			continue
		}
		if !h.IsSplit() {
			if h.Dirty {
				total += mem.HugePageSize
			}
			continue
		}
		for _, pte := range h.split {
			if pte.Dirty {
				total += mem.PageSize
			}
		}
	}
	return total
}

// WriteProtectAll re-arms tracking: every mapping (and split child)
// returns to read-only with dirty bits cleared, preserving the split
// structure. One batched shootdown is counted.
func (as *HugeAddressSpace) WriteProtectAll() {
	for _, h := range as.pages {
		if !h.Present {
			continue
		}
		h.Writable = false
		h.Dirty = false
		for _, pte := range h.split {
			pte.Writable = false
			pte.Dirty = false
			as.stats.TLBInvalidate++
		}
	}
	as.stats.TLBShootdowns++
}

// TLBReach returns the number of TLB entries needed to cover the mapped
// region: 1 per unsplit huge page, 512 per split one — the cost the split
// mitigation pays.
func (as *HugeAddressSpace) TLBReach() int {
	n := 0
	for _, h := range as.pages {
		if !h.Present {
			continue
		}
		if h.IsSplit() {
			n += 512
		} else {
			n++
		}
	}
	return n
}
