package vm

import (
	"testing"

	"kona/internal/mem"
)

func hugeRange(first, n uint64) mem.Range {
	return mem.Range{Start: mem.Addr(first * mem.HugePageSize), Len: n * mem.HugePageSize}
}

func TestHugeMapTouch(t *testing.T) {
	as := NewHugeAddressSpace()
	if got := as.Touch(0, false); got != MajorFault {
		t.Fatalf("unmapped touch = %v", got)
	}
	as.Map(hugeRange(0, 2), false)
	if got := as.Touch(100, false); got != NoFault {
		t.Fatalf("mapped read = %v", got)
	}
	if got := as.Touch(100, true); got != WriteProtectFault {
		t.Fatalf("store to RO huge page = %v", got)
	}
}

func TestHugeWholePageDirtyAmplification(t *testing.T) {
	as := NewHugeAddressSpace()
	as.Map(hugeRange(0, 1), false)
	if as.Touch(64, true) != WriteProtectFault {
		t.Fatal("expected WP fault")
	}
	if err := as.ResolveWPWhole(64); err != nil {
		t.Fatal(err)
	}
	if as.Touch(64, true) != NoFault {
		t.Fatal("store after resolve faulted")
	}
	// One 64-byte store marks 2MB dirty: amplification 32768x — the
	// Table 2 pathology.
	if got := as.DirtyBytes(hugeRange(0, 1)); got != mem.HugePageSize {
		t.Errorf("dirty bytes = %d, want %d", got, mem.HugePageSize)
	}
	if as.TLBReach() != 1 {
		t.Errorf("TLB reach = %d, want 1 (unsplit)", as.TLBReach())
	}
}

func TestHugeSplitReducesAmplification(t *testing.T) {
	as := NewHugeAddressSpace()
	as.Map(hugeRange(0, 1), false)
	if as.Touch(64, true) != WriteProtectFault {
		t.Fatal("expected WP fault")
	}
	if err := as.ResolveWPSplit(64); err != nil {
		t.Fatal(err)
	}
	// Only the containing 4KB page is dirty now.
	if got := as.DirtyBytes(hugeRange(0, 1)); got != mem.PageSize {
		t.Errorf("dirty bytes = %d, want %d (split)", got, mem.PageSize)
	}
	// The store to the split page proceeds; a store elsewhere in the
	// region faults independently.
	if as.Touch(64, true) != NoFault {
		t.Errorf("split page still faults")
	}
	if as.Touch(mem.PageSize*10, true) != WriteProtectFault {
		t.Errorf("other 4KB page must fault separately")
	}
	// The mitigation's cost: TLB reach exploded 512x and a shootdown
	// happened (§2.1).
	if as.TLBReach() != 512 {
		t.Errorf("TLB reach = %d, want 512", as.TLBReach())
	}
	if as.Splits != 1 || as.Stats().TLBShootdowns != 1 {
		t.Errorf("split accounting: %d splits, %+v", as.Splits, as.Stats())
	}
	// Splitting again is a no-op.
	if err := as.Split(64); err != nil {
		t.Fatal(err)
	}
	if as.Splits != 1 {
		t.Errorf("double split counted")
	}
}

func TestHugeSplitErrors(t *testing.T) {
	as := NewHugeAddressSpace()
	if err := as.Split(0); err == nil {
		t.Errorf("split of unmapped page succeeded")
	}
	if err := as.ResolveWPWhole(0); err == nil {
		t.Errorf("resolve of unmapped page succeeded")
	}
	if err := as.ResolveWPSplit(0); err == nil {
		t.Errorf("split resolve of unmapped page succeeded")
	}
	as.Map(mem.Range{}, true) // no-op
	if as.TLBReach() != 0 {
		t.Errorf("empty map created entries")
	}
	if as.DirtyBytes(mem.Range{}) != 0 {
		t.Errorf("empty range dirty bytes nonzero")
	}
}

func TestHugeSplitTouchPaths(t *testing.T) {
	as := NewHugeAddressSpace()
	as.Map(hugeRange(0, 1), true) // writable: no WP faults
	if as.Touch(0, true) != NoFault {
		t.Fatal("writable huge store faulted")
	}
	if err := as.Split(0); err != nil {
		t.Fatal(err)
	}
	// Children inherit writability and dirtiness.
	if as.Touch(8192, true) != NoFault {
		t.Errorf("split child of writable page faulted")
	}
	if got := as.DirtyBytes(hugeRange(0, 1)); got < 2*mem.PageSize {
		t.Errorf("dirty bytes = %d, want >= 2 pages (inherited + new)", got)
	}
}
