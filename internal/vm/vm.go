// Package vm simulates the virtual-memory machinery that page-based remote
// memory systems (Infiniswap, LegoOS, and the paper's own Kona-VM baseline)
// are built on: page tables with present/write-protect bits, a TLB with
// invalidations and cross-core shootdowns, and page faults with the cost
// model the paper measures in §2.1.
//
// The package tracks both functional state (which pages are present,
// write-protected, dirty, accessed) and cost accounting (fault counts, TLB
// flushes, shootdowns), which the runtime layers convert to virtual time.
package vm

import (
	"fmt"

	"kona/internal/mem"
)

// PTE is one page-table entry's state.
type PTE struct {
	// Present means an access does not fault for fetch reasons.
	Present bool
	// Writable means a store does not take a write-protect fault.
	Writable bool
	// Dirty is the hardware dirty bit, set on the first permitted store.
	Dirty bool
	// Accessed is the hardware accessed bit.
	Accessed bool
}

// FaultKind classifies a page fault.
type FaultKind int

const (
	// NoFault means the access proceeded.
	NoFault FaultKind = iota
	// MajorFault is a not-present fault (remote fetch needed).
	MajorFault
	// WriteProtectFault is a store to a present, read-only page.
	WriteProtectFault
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case MajorFault:
		return "major"
	case WriteProtectFault:
		return "write-protect"
	default:
		return "none"
	}
}

// Stats counts virtual-memory events.
type Stats struct {
	MajorFaults   uint64
	WPFaults      uint64
	TLBInvalidate uint64
	TLBShootdowns uint64
	Unmaps        uint64
}

// AddressSpace is a simulated process address space over 4KB pages.
type AddressSpace struct {
	pages map[uint64]*PTE
	stats Stats
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*PTE)}
}

// Stats returns a copy of the event counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// Map installs PTEs for the page range as present. writable controls the
// initial protection (page-based remote memory maps fetched pages
// read-only so the first store faults — that is the dirty-tracking hook).
func (as *AddressSpace) Map(r mem.Range, writable bool) {
	if r.Len == 0 {
		return
	}
	for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
		as.pages[p] = &PTE{Present: true, Writable: writable}
	}
}

// Unmap removes the pages covering r (marks not-present and forgets them),
// counting the TLB shootdown that a real unmap requires.
func (as *AddressSpace) Unmap(r mem.Range) {
	if r.Len == 0 {
		return
	}
	for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
		delete(as.pages, p)
		as.stats.Unmaps++
	}
	as.stats.TLBShootdowns++
}

// Lookup returns the PTE for the page containing a, or nil if unmapped.
func (as *AddressSpace) Lookup(a mem.Addr) *PTE {
	return as.pages[a.Page()]
}

// Touch performs the MMU side of one access to address a and returns the
// fault it raises, if any. The caller (the runtime's fault handler) is
// responsible for resolving the fault — fetching the page, upgrading
// protection — and for charging its cost.
func (as *AddressSpace) Touch(a mem.Addr, write bool) FaultKind {
	pte := as.pages[a.Page()]
	if pte == nil || !pte.Present {
		as.stats.MajorFaults++
		return MajorFault
	}
	pte.Accessed = true
	if write {
		if !pte.Writable {
			as.stats.WPFaults++
			return WriteProtectFault
		}
		pte.Dirty = true
	}
	return NoFault
}

// ResolveMajor installs the page containing a as present. writable sets
// the post-fetch protection.
func (as *AddressSpace) ResolveMajor(a mem.Addr, writable bool) {
	p := a.Page()
	pte := as.pages[p]
	if pte == nil {
		pte = &PTE{}
		as.pages[p] = pte
	}
	pte.Present = true
	pte.Writable = writable
	pte.Accessed = true
}

// ResolveWP upgrades the page containing a to writable and marks it dirty,
// the action of a write-protect fault handler. It counts the local TLB
// invalidation the PTE change requires.
func (as *AddressSpace) ResolveWP(a mem.Addr) error {
	pte := as.pages[a.Page()]
	if pte == nil || !pte.Present {
		return fmt.Errorf("vm: write-protect resolve on non-present page %v", a)
	}
	pte.Writable = true
	pte.Dirty = true
	as.stats.TLBInvalidate++
	return nil
}

// WriteProtect downgrades the pages covering r to read-only and clears
// their dirty bits — the periodic re-arm of page-granularity dirty
// tracking. It costs one shootdown for the batch (the kernel batches the
// IPIs) plus one local invalidation per page.
func (as *AddressSpace) WriteProtect(r mem.Range) {
	if r.Len == 0 {
		return
	}
	for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
		if pte := as.pages[p]; pte != nil && pte.Present {
			pte.Writable = false
			pte.Dirty = false
			as.stats.TLBInvalidate++
		}
	}
	as.stats.TLBShootdowns++
}

// DirtyPages returns the page indices with the dirty bit set inside r.
func (as *AddressSpace) DirtyPages(r mem.Range) []uint64 {
	if r.Len == 0 {
		return nil
	}
	var out []uint64
	for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
		if pte := as.pages[p]; pte != nil && pte.Dirty {
			out = append(out, p)
		}
	}
	return out
}

// MappedPages returns the number of present pages.
func (as *AddressSpace) MappedPages() int {
	n := 0
	for _, pte := range as.pages {
		if pte.Present {
			n++
		}
	}
	return n
}
