package vm

import (
	"testing"
	"testing/quick"

	"kona/internal/mem"
)

func pageRange(first, n uint64) mem.Range {
	return mem.Range{Start: mem.PageBase(first), Len: n * mem.PageSize}
}

func TestMajorFaultLifecycle(t *testing.T) {
	as := NewAddressSpace()
	a := mem.Addr(5 * mem.PageSize)
	if got := as.Touch(a, false); got != MajorFault {
		t.Fatalf("unmapped touch = %v, want major fault", got)
	}
	as.ResolveMajor(a, false)
	if got := as.Touch(a, false); got != NoFault {
		t.Fatalf("post-resolve read = %v", got)
	}
	// Page was fetched read-only: first store takes a WP fault.
	if got := as.Touch(a, true); got != WriteProtectFault {
		t.Fatalf("store to read-only = %v, want WP fault", got)
	}
	if err := as.ResolveWP(a); err != nil {
		t.Fatal(err)
	}
	if got := as.Touch(a, true); got != NoFault {
		t.Fatalf("store after WP resolve = %v", got)
	}
	st := as.Stats()
	if st.MajorFaults != 1 || st.WPFaults != 1 || st.TLBInvalidate != 1 {
		t.Errorf("stats = %+v", st)
	}
	if dirty := as.DirtyPages(pageRange(0, 10)); len(dirty) != 1 || dirty[0] != 5 {
		t.Errorf("dirty pages = %v, want [5]", dirty)
	}
}

func TestMapWritable(t *testing.T) {
	as := NewAddressSpace()
	as.Map(pageRange(0, 4), true)
	if as.MappedPages() != 4 {
		t.Fatalf("mapped = %d, want 4", as.MappedPages())
	}
	if got := as.Touch(0, true); got != NoFault {
		t.Fatalf("store to writable mapping = %v", got)
	}
	if pte := as.Lookup(0); pte == nil || !pte.Dirty || !pte.Accessed {
		t.Errorf("dirty/accessed not set: %+v", pte)
	}
}

func TestWriteProtectRearm(t *testing.T) {
	as := NewAddressSpace()
	as.Map(pageRange(0, 4), true)
	as.Touch(0, true)
	as.Touch(mem.PageBase(1), true)
	if len(as.DirtyPages(pageRange(0, 4))) != 2 {
		t.Fatalf("expected 2 dirty pages")
	}
	as.WriteProtect(pageRange(0, 4))
	if len(as.DirtyPages(pageRange(0, 4))) != 0 {
		t.Errorf("write-protect did not clear dirty bits")
	}
	if got := as.Touch(0, true); got != WriteProtectFault {
		t.Errorf("store after re-protect = %v, want WP fault", got)
	}
	st := as.Stats()
	if st.TLBShootdowns != 1 {
		t.Errorf("shootdowns = %d, want 1 (batched)", st.TLBShootdowns)
	}
	if st.TLBInvalidate != 4 {
		t.Errorf("invalidations = %d, want 4 (per page)", st.TLBInvalidate)
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddressSpace()
	as.Map(pageRange(0, 2), true)
	as.Unmap(pageRange(0, 1))
	if got := as.Touch(0, false); got != MajorFault {
		t.Errorf("touch after unmap = %v", got)
	}
	if got := as.Touch(mem.PageBase(1), false); got != NoFault {
		t.Errorf("neighbor page unmapped too")
	}
	if as.Stats().TLBShootdowns != 1 {
		t.Errorf("unmap must shootdown")
	}
	// Zero-length ops are no-ops.
	as.Unmap(mem.Range{})
	as.Map(mem.Range{}, true)
	as.WriteProtect(mem.Range{})
	if as.Stats().TLBShootdowns != 1 {
		t.Errorf("zero-length ops must not count")
	}
}

func TestResolveWPOnUnmapped(t *testing.T) {
	as := NewAddressSpace()
	if err := as.ResolveWP(0); err == nil {
		t.Errorf("expected error resolving WP on unmapped page")
	}
}

// Property: after any sequence of map/touch/protect operations, a store
// only succeeds silently when the PTE is present+writable, and Dirty
// implies Writable was set at store time.
func TestVMInvariantsQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		as := NewAddressSpace()
		for _, op := range ops {
			page := uint64(op % 8)
			a := mem.PageBase(page)
			switch (op / 8) % 5 {
			case 0:
				as.Map(pageRange(page, 1), op%2 == 0)
			case 1:
				if as.Touch(a, true) == NoFault {
					pte := as.Lookup(a)
					if pte == nil || !pte.Present || !pte.Writable || !pte.Dirty {
						return false
					}
				}
			case 2:
				as.Touch(a, false)
			case 3:
				as.WriteProtect(pageRange(page, 1))
				if pte := as.Lookup(a); pte != nil && (pte.Writable || pte.Dirty) && pte.Present {
					return false
				}
			case 4:
				as.Unmap(pageRange(page, 1))
				if as.Lookup(a) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Lookup(0) {
		t.Fatalf("cold lookup hit")
	}
	if !tlb.Lookup(63) { // same page
		t.Fatalf("same-page lookup missed")
	}
	tlb.Lookup(mem.PageBase(1))
	tlb.Lookup(0)               // page 0 MRU
	tlb.Lookup(mem.PageBase(2)) // evicts page 1 (LRU)
	if tlb.Lookup(mem.PageBase(1)) {
		t.Errorf("LRU page survived")
	}
	if tlb.Len() != 2 {
		t.Errorf("len = %d, want 2", tlb.Len())
	}
}

func TestTLBInvalidateFlush(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Lookup(0)
	tlb.Invalidate(0)
	if tlb.Lookup(0) {
		t.Errorf("lookup hit after invalidate")
	}
	tlb.Lookup(mem.PageBase(1))
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Errorf("flush left entries")
	}
	hits, misses, flushes := tlb.Stats()
	if hits != 0 || misses != 3 || flushes != 1 {
		t.Errorf("stats = %d,%d,%d", hits, misses, flushes)
	}
}

func TestTLBCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for zero capacity")
		}
	}()
	NewTLB(0)
}

// Property: TLB never exceeds capacity.
func TestTLBCapacityQuick(t *testing.T) {
	f := func(pages []uint8) bool {
		tlb := NewTLB(4)
		for _, p := range pages {
			tlb.Lookup(mem.PageBase(uint64(p)))
			if tlb.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
