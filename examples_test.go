package kona_test

// Smoke tests for the runnable examples: each must build and run to
// completion. Guarded by -short because `go run` compiles on every
// invocation.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// exampleChecks maps each example to a string its output must contain.
var exampleChecks = map[string]string{
	"quickstart":  "dirty lines in first page",
	"kvstore":     "speedup",
	"graph":       "highest-ranked vertex",
	"replication": "data intact",
	"tracking":    "mean amplification",
	"coherent":    "no page fault",
	"distributed": "the rack is real",
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs every example")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(exampleChecks) {
		t.Fatalf("examples/ has %d entries, checks cover %d — update exampleChecks", len(entries), len(exampleChecks))
	}
	for _, e := range entries {
		name := e.Name()
		want, ok := exampleChecks[name]
		if !ok {
			t.Errorf("no output check for example %q", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			ctxCmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			ctxCmd.Env = os.Environ()
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = ctxCmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = ctxCmd.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
			if runErr != nil {
				t.Fatalf("example %s failed: %v\n%s", name, runErr, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
