module kona

go 1.22
