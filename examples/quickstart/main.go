// Quickstart: allocate disaggregated memory, write through the runtime,
// watch the cache-line dirty tracking, and drain the eviction log.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kona"
)

func main() {
	// A rack with two 64MB memory nodes and a compute node whose local
	// DRAM cache (FMem) holds 8MB.
	rack := kona.NewCluster(2, 64<<20)
	rt := kona.New(kona.DefaultConfig(8<<20), rack)

	// Allocation is transparent: the Resource Manager pre-provisions
	// coarse slabs from the rack controller.
	addr, err := rt.Malloc(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated 1MB of disaggregated memory at %v\n", addr)

	// Writes are tracked per 64-byte cache line — no page faults, no
	// write protection.
	now, err := rt.Write(0, addr+100, []byte("hello disaggregated world"))
	if err != nil {
		log.Fatal(err)
	}
	dirty := rt.DirtyLines(addr)
	fmt.Printf("dirty lines in first page: %d of 64 (bitmap %b)\n", dirty.Count(), dirty)

	// Reads hit the local cache after the first fetch.
	buf := make([]byte, 25)
	now, err = rt.Read(now, addr+100, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q at virtual time %v\n", buf, now)

	// Sync pushes only the dirty cache lines to the memory nodes through
	// the aggregated cache-line log.
	if _, err := rt.Sync(now); err != nil {
		log.Fatal(err)
	}
	ev := rt.EvictStats()
	fmt.Printf("eviction: %d dirty pages, %d lines (%d payload bytes) in %d log flush(es); %d bytes on the wire\n",
		ev.DirtyPages, ev.LinesShipped, ev.PayloadBytes, ev.Flushes, ev.WireBytes)
	fmt.Printf("page-granularity eviction would have moved %d bytes (%.1fx more)\n",
		ev.DirtyPages*kona.PageSize, float64(ev.DirtyPages*kona.PageSize)/float64(ev.WireBytes))

	st := rt.FPGAStats()
	fmt.Printf("FPGA: %d line fills, %d FMem hits, %d remote fetches, %d writebacks observed\n",
		st.LineFills, st.FMemHits, st.RemoteFetches, st.Writebacks)
}
