// replication: the §4.5 failure story — every slab placed on two memory
// nodes, eviction fanned out to both, and reads surviving the loss of the
// primary node, with the machine-check path exercised by an injected
// network delay.
//
//	go run ./examples/replication
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"kona"
)

func main() {
	rack := kona.NewCluster(3, 64<<20)
	cfg := kona.DefaultConfig(2 << 20)
	cfg.Replicas = 2
	rt := kona.New(cfg, rack)

	addr, err := rt.Malloc(8 << 20)
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("replicated-data."), 16)
	now, err := rt.Write(0, addr, payload)
	if err != nil {
		log.Fatal(err)
	}
	// Sync ships the dirty cache lines to both replicas.
	if now, err = rt.Sync(now); err != nil {
		log.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		n, _ := rack.Node(id)
		logs, lines := n.ReceiverStats()
		fmt.Printf("node %d: %d log(s) received, %d cache lines applied\n", id, logs, lines)
	}

	// Inject a long network delay toward node 0: the next cold fetch
	// exceeds the coherence protocol's patience and is recorded as a
	// survived machine-check event (§4.5, network failures).
	if err := rt.InjectNetworkDelay(0, 300*time.Microsecond); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	if now, err = rt.ReadChecked(now, addr+4<<20, buf); err != nil {
		log.Fatal(err)
	}
	if err := rt.InjectNetworkDelay(0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after slow-network fetch: %d MCE(s) detected and survived\n", rt.FailureStats().MCEs)

	// Kill the primary node outright. Reads fail over to the replica.
	primary, _ := rack.Node(0)
	primary.Fail()
	fmt.Println("node 0 failed")

	got := make([]byte, len(payload))
	if _, err = rt.Read(now, addr, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("replica returned stale data")
	}
	fmt.Printf("read after failure OK (%d failover translations); data intact: %q...\n",
		rt.FailureStats().Failovers, got[:16])

	// And when the outage resolves, the node simply serves again.
	primary.Recover()
	if _, err := rt.Read(now, addr, got); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 0 recovered; primary serving again")
}
