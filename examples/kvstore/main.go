// kvstore: a Redis-like in-memory key-value store whose value heap lives
// in disaggregated memory, run against both runtimes — Kona and the
// page-fault-based Kona-VM — under the same uniform-random workload (the
// paper's motivating application, §2.1/§6.1).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"

	"kona"
)

// store is a fixed-slot hash table over disaggregated memory: each slot
// holds a 128-byte value; keys map to slots by hash. Collisions overwrite
// (a cache, not a database), which keeps the example focused on the
// runtime.
type store struct {
	rt interface {
		Malloc(uint64) (kona.Addr, error)
		Read(kona.Time, kona.Addr, []byte) (kona.Time, error)
		Write(kona.Time, kona.Addr, []byte) (kona.Time, error)
	}
	base  kona.Addr
	slots uint64
	now   kona.Time
}

const valueSize = 128

func newStore(rt interface {
	Malloc(uint64) (kona.Addr, error)
	Read(kona.Time, kona.Addr, []byte) (kona.Time, error)
	Write(kona.Time, kona.Addr, []byte) (kona.Time, error)
}, slots uint64) (*store, error) {
	base, err := rt.Malloc(slots * valueSize)
	if err != nil {
		return nil, err
	}
	return &store{rt: rt, base: base, slots: slots}, nil
}

func (s *store) slotOf(key string) kona.Addr {
	h := fnv.New64a()
	h.Write([]byte(key))
	return s.base + kona.Addr(h.Sum64()%s.slots*valueSize)
}

// Set stores a value (truncated/padded to the slot size).
func (s *store) Set(key string, value []byte) error {
	var buf [valueSize]byte
	copy(buf[:], value)
	var err error
	s.now, err = s.rt.Write(s.now, s.slotOf(key), buf[:])
	return err
}

// Get fetches a value.
func (s *store) Get(key string) ([]byte, error) {
	buf := make([]byte, valueSize)
	var err error
	s.now, err = s.rt.Read(s.now, s.slotOf(key), buf)
	return buf, err
}

// run executes the same GET/SET workload on a store and returns the final
// virtual time (i.e. the modeled execution time).
func run(s *store, ops int, seed int64) (kona.Time, error) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("user:%d", rng.Intn(50000))
		if rng.Intn(2) == 0 {
			if err := s.Set(key, []byte(key+"-value")); err != nil {
				return 0, err
			}
		} else {
			if _, err := s.Get(key); err != nil {
				return 0, err
			}
		}
	}
	return s.now, nil
}

func main() {
	const (
		slots = 64 << 10 // 64K slots x 128B = 8MB of values
		ops   = 30000
	)
	// 25% of the value heap fits in the local cache — the regime where
	// the paper reports >60% throughput loss for page-based systems.
	cfg := kona.DefaultConfig(2 << 20)

	konaRT := kona.New(cfg, kona.NewCluster(2, 64<<20))
	ks, err := newStore(konaRT, slots)
	if err != nil {
		log.Fatal(err)
	}
	konaTime, err := run(ks, ops, 7)
	if err != nil {
		log.Fatal(err)
	}

	vmRT := kona.NewVM(cfg, kona.NewCluster(2, 64<<20))
	vs, err := newStore(vmRT, slots)
	if err != nil {
		log.Fatal(err)
	}
	vmTime, err := run(vs, ops, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Functional check: both stores answer identically.
	a, _ := ks.Get("user:31")
	b, _ := vs.Get("user:31")
	if string(a) != string(b) {
		log.Fatal("stores diverged")
	}

	fmt.Printf("kv-store, %d ops over %dMB of values, 25%% local cache:\n", ops, slots*valueSize>>20)
	fmt.Printf("  Kona    : %v  (%.0f ops/s simulated)\n", konaTime, float64(ops)/konaTime.Seconds())
	fmt.Printf("  Kona-VM : %v  (%.0f ops/s simulated)\n", vmTime, float64(ops)/vmTime.Seconds())
	fmt.Printf("  speedup : %.1fx from coherence-based remote memory\n", float64(vmTime)/float64(konaTime))

	st := konaRT.FPGAStats()
	fmt.Printf("  Kona FPGA: %d fills, %d FMem hits (%.0f%%), %d remote fetches\n",
		st.LineFills, st.FMemHits, 100*float64(st.FMemHits)/float64(st.LineFills), st.RemoteFetches)
	vm := vmRT.Stats()
	fmt.Printf("  Kona-VM: %d major faults, %d write-protect faults, %d evictions\n",
		vm.Fetches, vm.WPFaults, vm.Evictions)
}
