// kvstore: the paper's motivating application (§2.1/§6.1) — a
// memcached-style key-value store whose value heap lives in
// disaggregated memory. This demo is a thin driver over the real
// service engine in internal/kv (the sharded store, size-class value
// heap and zipfian workload model that kona-kvd serves over TCP): the
// same store code runs against both runtimes — cache-coherent Kona and
// the page-fault-based Kona-VM — under an identical op stream, and the
// virtual-time ratio is the coherence speedup.
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"fmt"
	"log"

	"kona"
	"kona/internal/kv"
)

const ops = 30000

// runStore drives one store through the shared zipfian op stream and
// returns the final virtual time (the modeled execution time).
func runStore(rt kv.Runtime, seed int64) (kona.Time, *kv.Store, error) {
	store := kv.NewStore(rt, kv.Config{Shards: 8})
	gen, err := kv.NewGenerator(kv.WorkloadConfig{
		Keys:         50_000,
		ZipfS:        1.1,
		ReadFraction: 0.5,
		RatePerSec:   100_000,
		Seed:         seed,
	})
	if err != nil {
		return 0, nil, err
	}
	now := store.Clock()
	var getBuf, setBuf []byte
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if op.Read {
			val, _, t, ok, err := store.Get(now, op.Key, getBuf)
			if err != nil {
				return 0, nil, err
			}
			now = t
			if ok {
				getBuf = val
				if _, intact := kv.ParseValue(val); !intact {
					return 0, nil, fmt.Errorf("torn value for %s", op.Key)
				}
			}
		} else {
			if cap(setBuf) < op.ValueLen {
				setBuf = make([]byte, op.ValueLen)
			}
			setBuf = kv.MakeValue(setBuf[:op.ValueLen], op)
			t, err := store.Set(now, op.Key, setBuf, 0)
			if err != nil {
				return 0, nil, err
			}
			now = t
		}
	}
	// Drain the dirty cache lines to the memory nodes before reading
	// the clock: writeback is part of the work.
	t, err := store.Sync(now)
	if err != nil {
		return 0, nil, err
	}
	return t, store, nil
}

func main() {
	// 2MB of local cache under several MB of live values — the regime
	// where the paper reports >60% throughput loss for page-based
	// systems.
	cfg := kona.DefaultConfig(2 << 20)

	konaRT := kona.New(cfg, kona.NewCluster(2, 64<<20))
	konaTime, ks, err := runStore(konaRT, 7)
	if err != nil {
		log.Fatal(err)
	}

	vmRT := kona.NewVM(cfg, kona.NewCluster(2, 64<<20))
	vmTime, vs, err := runStore(vmRT, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Functional check: same op stream, so both stores answer the
	// hottest key identically.
	a, _, _, aok, _ := ks.Get(konaTime, "user:1", nil)
	b, _, _, bok, _ := vs.Get(vmTime, "user:1", nil)
	if aok != bok || !bytes.Equal(a, b) {
		log.Fatal("stores diverged")
	}

	st := ks.Stats()
	fmt.Printf("kv-store (internal/kv), %d zipfian ops, %d keys live, %dKB of values, 2MB local cache:\n",
		ops, st.Keys, st.LiveBytes>>10)
	fmt.Printf("  Kona    : %v  (%.0f ops/s simulated)\n", konaTime, float64(ops)/konaTime.Seconds())
	fmt.Printf("  Kona-VM : %v  (%.0f ops/s simulated)\n", vmTime, float64(ops)/vmTime.Seconds())
	fmt.Printf("  speedup : %.1fx from coherence-based remote memory\n", float64(vmTime)/float64(konaTime))
	fmt.Printf("  store   : %d hits, %d misses, %d sets, %d corrupt\n",
		st.Hits, st.Misses, st.Sets, st.Corrupt)

	fst := konaRT.FPGAStats()
	fmt.Printf("  Kona FPGA: %d fills, %d FMem hits (%.0f%%), %d remote fetches\n",
		fst.LineFills, fst.FMemHits, 100*float64(fst.FMemHits)/float64(fst.LineFills), fst.RemoteFetches)
	vm := vmRT.Stats()
	fmt.Printf("  Kona-VM: %d major faults, %d write-protect faults, %d evictions\n",
		vm.Fetches, vm.WPFaults, vm.Evictions)
}
