// distributed: the runtime against a real networked rack — a controller
// and two memory nodes running as TCP servers in this process (exactly
// what cmd/kona-controller and cmd/kona-memnode run standalone), with the
// compute side attached via kona.NewTCP. Bytes cross real sockets.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"fmt"
	"log"

	"kona"
	"kona/internal/cluster"
)

func main() {
	// The rack: one controller daemon, two memory-node daemons.
	ctrl := cluster.NewController()
	cs, err := cluster.ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	cc := cluster.DialController(cs.Addr())
	for i := 0; i < 2; i++ {
		node := cluster.NewMemoryNode(i, 64<<20)
		ns, err := cluster.ServeMemoryNode(node, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ns.Close()
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("memory node %d serving on %s\n", i, ns.Addr())
	}
	fmt.Printf("controller serving on %s\n\n", cs.Addr())

	// The compute side: same API as the simulated transport.
	rt := kona.NewTCP(kona.DefaultConfig(2<<20), cs.Addr())
	addr, err := rt.Malloc(8 << 20)
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("over-the-wire."), 32)
	now, err := rt.Write(0, addr, payload)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if now, err = rt.Read(now, addr, buf); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		log.Fatal("round trip corrupted")
	}
	if _, err := rt.Sync(now); err != nil {
		log.Fatal(err)
	}
	st := rt.FPGAStats()
	ev := rt.EvictStats()
	fmt.Printf("read %d bytes back intact after %v of (wall-clock) virtual time\n", len(buf), now)
	fmt.Printf("fetches over TCP: %d; eviction log flushes: %d (%d bytes shipped)\n",
		st.RemoteFetches, ev.Flushes, ev.WireBytes)
	fmt.Println("same runtime, same API — swap kona.New for kona.NewTCP and the rack is real")
}
