// coherent: the paper's central mechanism, end to end — simulated CPU
// caches speak MESI to a directory backed by the Kona FPGA, so plain
// loads and stores become remote fetches and cache-line dirty tracking
// without any explicit runtime calls (§2.3, §4.3).
//
//	go run ./examples/coherent
package main

import (
	"fmt"
	"log"

	"kona"
)

func main() {
	rack := kona.NewCluster(2, 64<<20)
	rt := kona.New(kona.DefaultConfig(4<<20), rack)
	addr, err := rt.Malloc(1 << 20)
	if err != nil {
		log.Fatal(err)
	}

	// Two simulated CPU cores, each with a 256-line private cache,
	// attached to the runtime through the coherence protocol.
	dom := rt.NewCoherentDomain(2, 256, 4)

	// Core 0 stores: an ordinary cache miss becomes a read-for-ownership
	// that the FPGA satisfies by fetching the page from a memory node.
	if err := dom.Store(0, addr, []byte("written by core 0")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after core-0 store: %d remote fetches, dirty lines tracked: %v\n",
		rt.FPGAStats().RemoteFetches, rt.DirtyLines(addr))

	// Core 1 loads the same bytes: MESI forwards core 0's modified line
	// and the resulting writeback is what sets the FPGA's dirty bitmap.
	buf := make([]byte, 17)
	if err := dom.Load(1, addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core 1 read %q; dirty bitmap now %b\n", buf, rt.DirtyLines(addr))

	// Snoop the CPU caches (the eviction path's ordering step) and drain
	// the cache-line log: remote memory is durable and current.
	dom.Drain(kona.AddrRange(addr, 1<<20))
	if _, err := rt.Sync(0); err != nil {
		log.Fatal(err)
	}
	ev := rt.EvictStats()
	fmt.Printf("synced: %d dirty lines shipped in %d flush(es), %d bytes on the wire\n",
		ev.LinesShipped, ev.Flushes, ev.WireBytes)
	fmt.Println("no page fault, no write protection, no TLB shootdown was needed")
}
