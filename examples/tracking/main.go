// tracking: run the KTracker emulation (§5) on the Redis workloads and
// print the per-window dirty-data statistics that drive Figs 9-10 — a
// demonstration of the repository's measurement tooling rather than of
// the runtime itself.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"kona/internal/ktracker"
	"kona/internal/workload"
)

func main() {
	for _, w := range []*workload.Workload{workload.RedisRand(), workload.RedisSeq()} {
		w.Windows = min(w.Windows, 30)
		results, err := ktracker.Run(w, 42)
		if err != nil {
			log.Fatal(err)
		}
		skip := 0
		if w.Name == "Redis-Rand" {
			skip = 10
		}
		s := ktracker.Summarize(results, skip)
		fmt.Printf("%s (%d windows after startup):\n", w.Name, s.Windows)
		fmt.Printf("  mean amplification: 4KB %.2fx, cache-line %.2fx (ratio %.1fx)\n",
			s.MeanAmp4K, s.MeanAmpCL, s.MeanRatio)
		fmt.Printf("  write-protect faults the coherence approach avoids: %d\n", s.TotalFaults)
		sp, err := ktracker.Speedup(w, results, skip)
		if err != nil {
			log.Fatal(err)
		}
		pml, err := ktracker.PMLOverhead(w, results, skip)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tracking speedup vs write-protection at native rate: %.1f%% (Intel PML overhead would be %.2f%%, but at page granularity)\n", sp, pml)
		fmt.Printf("  emulation diff cost (the §6.3 KTracker overhead): %v\n\n", s.TotalDiff)
	}
	fmt.Println("see `go run ./cmd/kona-bench -run fig9,fig10` for the full figures")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
