// graph: PageRank over a synthetic power-law graph whose vertex state and
// edge arrays live in disaggregated memory — the GraphLab-class workload
// of the paper's evaluation (Table 2, Fig 8c).
//
//	go run ./examples/graph
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"kona"
)

const (
	vertices   = 20000
	edgeFactor = 8
	iterations = 3
	damping    = 0.85
)

// graph keeps its adjacency in disaggregated memory: an offset array and
// an edge array (CSR), plus two rank arrays (current and next), all as
// float64/uint32 blobs accessed through the runtime.
type graph struct {
	rt        *kona.Runtime
	now       kona.Time
	offsets   kona.Addr // (vertices+1) x uint32
	edges     kona.Addr // e x uint32
	ranks     kona.Addr // vertices x float64
	nextRanks kona.Addr
	edgeCount int
}

func buildGraph(rt *kona.Runtime, seed int64) (*graph, error) {
	rng := rand.New(rand.NewSource(seed))
	// Power-law-ish degrees: preferential attachment over a shuffled
	// order, bounded for simplicity.
	adj := make([][]uint32, vertices)
	for v := 1; v < vertices; v++ {
		deg := 1 + rng.Intn(2*edgeFactor)
		for i := 0; i < deg; i++ {
			// Bias toward low vertex ids (earlier = higher degree).
			t := uint32(rng.Intn(v))
			if rng.Intn(3) != 0 {
				t = uint32(rng.Intn((v + 3) / 4))
			}
			adj[v] = append(adj[v], t)
		}
	}
	g := &graph{rt: rt}
	for _, l := range adj {
		g.edgeCount += len(l)
	}
	var err error
	if g.offsets, err = rt.Malloc(uint64(vertices+1) * 4); err != nil {
		return nil, err
	}
	if g.edges, err = rt.Malloc(uint64(g.edgeCount) * 4); err != nil {
		return nil, err
	}
	if g.ranks, err = rt.Malloc(vertices * 8); err != nil {
		return nil, err
	}
	if g.nextRanks, err = rt.Malloc(vertices * 8); err != nil {
		return nil, err
	}
	// Serialize CSR into remote memory.
	off := uint32(0)
	buf4 := make([]byte, 4)
	for v := 0; v <= vertices; v++ {
		binary.LittleEndian.PutUint32(buf4, off)
		if g.now, err = rt.Write(g.now, g.offsets+kona.Addr(v*4), buf4); err != nil {
			return nil, err
		}
		if v < vertices {
			for _, t := range adj[v] {
				binary.LittleEndian.PutUint32(buf4, t)
				if g.now, err = rt.Write(g.now, g.edges+kona.Addr(off*4), buf4); err != nil {
					return nil, err
				}
				off++
			}
		}
	}
	// Initial ranks: 1/V.
	r0 := make([]byte, 8)
	binary.LittleEndian.PutUint64(r0, math.Float64bits(1.0/vertices))
	for v := 0; v < vertices; v++ {
		if g.now, err = rt.Write(g.now, g.ranks+kona.Addr(v*8), r0); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// iterate runs one PageRank sweep: for each vertex, read its out-edges
// and scatter rank/deg contributions into nextRanks.
func (g *graph) iterate() error {
	var err error
	// Zero next ranks to the base value (1-d)/V.
	base := (1 - damping) / vertices
	b8 := make([]byte, 8)
	binary.LittleEndian.PutUint64(b8, math.Float64bits(base))
	for v := 0; v < vertices; v++ {
		if g.now, err = g.rt.Write(g.now, g.nextRanks+kona.Addr(v*8), b8); err != nil {
			return err
		}
	}
	buf4 := make([]byte, 4)
	buf8 := make([]byte, 8)
	for v := 0; v < vertices; v++ {
		if g.now, err = g.rt.Read(g.now, g.offsets+kona.Addr(v*4), buf4); err != nil {
			return err
		}
		start := binary.LittleEndian.Uint32(buf4)
		if g.now, err = g.rt.Read(g.now, g.offsets+kona.Addr((v+1)*4), buf4); err != nil {
			return err
		}
		end := binary.LittleEndian.Uint32(buf4)
		if end == start {
			continue
		}
		if g.now, err = g.rt.Read(g.now, g.ranks+kona.Addr(v*8), buf8); err != nil {
			return err
		}
		rank := math.Float64frombits(binary.LittleEndian.Uint64(buf8))
		share := damping * rank / float64(end-start)
		for e := start; e < end; e++ {
			if g.now, err = g.rt.Read(g.now, g.edges+kona.Addr(e*4), buf4); err != nil {
				return err
			}
			t := binary.LittleEndian.Uint32(buf4)
			taddr := g.nextRanks + kona.Addr(t*8)
			if g.now, err = g.rt.Read(g.now, taddr, buf8); err != nil {
				return err
			}
			cur := math.Float64frombits(binary.LittleEndian.Uint64(buf8))
			binary.LittleEndian.PutUint64(buf8, math.Float64bits(cur+share))
			if g.now, err = g.rt.Write(g.now, taddr, buf8); err != nil {
				return err
			}
		}
	}
	g.ranks, g.nextRanks = g.nextRanks, g.ranks
	return nil
}

func main() {
	rack := kona.NewCluster(2, 128<<20)
	rt := kona.New(kona.DefaultConfig(4<<20), rack) // small FMem: real eviction traffic
	g, err := buildGraph(rt, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges in disaggregated memory\n", vertices, g.edgeCount)
	built := g.now
	for i := 0; i < iterations; i++ {
		if err := g.iterate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %d done at virtual time %v\n", i+1, g.now)
	}
	if _, err := rt.Sync(g.now); err != nil {
		log.Fatal(err)
	}
	// Top vertex by rank.
	buf8 := make([]byte, 8)
	best, bestRank := 0, 0.0
	for v := 0; v < 200; v++ {
		if g.now, err = rt.Read(g.now, g.ranks+kona.Addr(v*8), buf8); err != nil {
			log.Fatal(err)
		}
		r := math.Float64frombits(binary.LittleEndian.Uint64(buf8))
		if r > bestRank {
			best, bestRank = v, r
		}
	}
	fmt.Printf("highest-ranked vertex: %d (rank %.6f)\n", best, bestRank)
	st := rt.FPGAStats()
	ev := rt.EvictStats()
	fmt.Printf("FPGA: %d fills (%.1f%% FMem hits), %d remote fetches; compute time %v for %d iterations\n",
		st.LineFills, 100*float64(st.FMemHits)/float64(st.LineFills), st.RemoteFetches, g.now-built, iterations)
	fmt.Printf("eviction shipped %d payload bytes vs %d at page granularity (%.1fx saved)\n",
		ev.PayloadBytes, ev.DirtyPages*kona.PageSize,
		float64(ev.DirtyPages*kona.PageSize)/float64(ev.WireBytes))
}
