package kona_test

// End-to-end tests for the command-line tools, exercised the way a user
// would run them. Guarded by -short (each `go run` compiles).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command("go", append([]string{"run"}, args...)...).CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIKonaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tools")
	}
	list := runCLI(t, "./cmd/kona-bench", "-list")
	for _, id := range []string{"table2", "fig7", "fig11c", "abl-fetchgran", "ext-e2e"} {
		if !strings.Contains(list, id) {
			t.Errorf("kona-bench -list missing %s", id)
		}
	}
	outFile := filepath.Join(t.TempDir(), "res.txt")
	out := runCLI(t, "./cmd/kona-bench", "-run", "fig11c", "-quick", "-plot", "-out", outFile)
	if !strings.Contains(out, "Copy %") {
		t.Errorf("fig11c output missing breakdown:\n%s", out)
	}
	saved, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(saved), "Copy %") {
		t.Errorf("-out file missing content")
	}
}

func TestCLIKonaTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tools")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.ktr.gz")
	gen := runCLI(t, "./cmd/kona-trace", "-workload", "Redis-Seq", "-out", tracePath, "-max", "20000")
	if !strings.Contains(gen, "wrote 20000 records") {
		t.Fatalf("generate output: %s", gen)
	}
	insp := runCLI(t, "./cmd/kona-trace", "-inspect", tracePath)
	if !strings.Contains(insp, "20000 records") {
		t.Errorf("inspect output: %s", insp)
	}
	rep := runCLI(t, "./cmd/kona-trace", "-replay", tracePath, "-footprint", "8388608", "-max", "8000")
	if !strings.Contains(rep, "speedup") {
		t.Errorf("replay output: %s", rep)
	}
	if !strings.Contains(runCLI(t, "./cmd/kona-trace", "-list"), "PageRank-Algo") {
		t.Errorf("trace -list missing extras")
	}
}
