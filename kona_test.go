package kona_test

import (
	"bytes"
	"testing"

	"kona"
)

func TestFacadeQuickstart(t *testing.T) {
	rack := kona.NewCluster(2, 64<<20)
	rt := kona.New(kona.DefaultConfig(8<<20), rack)
	addr, err := rt.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello remote memory")
	now, err := rt.Write(0, addr, payload)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	now, err = rt.Read(now, addr, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read %q", buf)
	}
	if now <= 0 {
		t.Fatalf("virtual time did not advance")
	}
	if _, err := rt.Sync(now); err != nil {
		t.Fatal(err)
	}
	if rt.EvictStats().PayloadBytes == 0 {
		t.Errorf("sync shipped nothing")
	}
}

func TestFacadeVMBaseline(t *testing.T) {
	rack := kona.NewCluster(1, 64<<20)
	rt := kona.NewVM(kona.DefaultConfig(8<<20), rack)
	addr, err := rt.Malloc(kona.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Write(0, addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Fetches != 1 {
		t.Errorf("fetches = %d", rt.Stats().Fetches)
	}
}

func TestFacadeConstants(t *testing.T) {
	if kona.CacheLineSize != 64 || kona.PageSize != 4096 {
		t.Fatalf("granularities wrong")
	}
}

func TestFacadeAllocLib(t *testing.T) {
	rt := kona.New(kona.DefaultConfig(4<<20), kona.NewCluster(1, 64<<20))
	al := kona.NewAllocLib(rt, 0)
	small, err := al.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	big, err := al.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.Write(0, small, []byte("local")); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Write(0, big, []byte("remote")); err != nil {
		t.Fatal(err)
	}
	cm, rm := al.Stats()
	if cm != 1 || rm != 1 {
		t.Fatalf("placement = %d/%d", cm, rm)
	}
}

func TestFacadeCoherentDomain(t *testing.T) {
	rt := kona.New(kona.DefaultConfig(4<<20), kona.NewCluster(1, 64<<20))
	addr, err := rt.Malloc(kona.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	dom := rt.NewCoherentDomain(1, 64, 4)
	if err := dom.Store(0, addr, []byte{42}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := dom.Load(0, addr, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("coherent round trip = %d", buf[0])
	}
	dom.Drain(kona.AddrRange(addr, kona.PageSize))
}

func TestFacadeRangeHelpers(t *testing.T) {
	r := kona.AddrRange(100, 50)
	if r.Start != 100 || r.Len != 50 || !r.Contains(149) || r.Contains(150) {
		t.Fatalf("AddrRange wrong: %+v", r)
	}
}

func TestFacadeClose(t *testing.T) {
	rt := kona.New(kona.DefaultConfig(4<<20), kona.NewCluster(1, 64<<20))
	if _, err := rt.Malloc(kona.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(0); err != nil {
		t.Fatal(err)
	}
}
