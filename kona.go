// Package kona is the public API of this repository: a Go reproduction of
// "Rethinking Software Runtimes for Disaggregated Memory" (Calciu et al.,
// ASPLOS 2021) — the Kona coherence-based remote-memory runtime, its
// virtual-memory baseline, the rack-level substrate (controller and memory
// nodes), and the paper's simulation tools (KCacheSim, KTracker) and
// evaluation harness.
//
// A minimal program:
//
//	rack := kona.NewCluster(2, 64<<20)            // 2 memory nodes, 64MB each
//	rt := kona.New(kona.DefaultConfig(8<<20), rack) // 8MB local FMem cache
//	addr, _ := rt.Malloc(1 << 20)
//	t, _ := rt.Write(0, addr, []byte("hello remote memory"))
//	t, _ = rt.Read(t, addr, buf)
//	rt.Sync(t) // drain the cache-line log to the memory nodes
//
// Time is virtual: every operation takes and returns a simulated timestamp
// (kona.Time), advancing under the calibrated cost model described in
// DESIGN.md. Data movement is real — bytes travel between the compute
// node's cache and the memory nodes' pools through the simulated RDMA
// fabric or, for the daemons in cmd/, over TCP.
//
// Concurrency: a Runtime models one compute node whose data path —
// Read, Write, Sync, Malloc — is safe for concurrent goroutines; the
// FMem cache is lock-striped into Config.Shards shards with
// single-flight miss suppression (DESIGN.md §9). Virtual timestamps
// remain per-caller: each goroutine threads its own kona.Time, and the
// Fig 7 harness in internal/experiments still expresses simulated
// multi-threading through timestamps alone. Cluster and MemoryNode are
// safe for concurrent use. Cluster and MemoryNode are safe for concurrent use.
package kona

import (
	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
	"kona/internal/simclock"
)

// Addr is a byte address in the disaggregated (VFMem) address space.
type Addr = mem.Addr

// Time is a virtual timestamp (nanosecond resolution).
type Time = simclock.Duration

// Config sizes a runtime: local cache, slab size, replication factor,
// eviction-log geometry, prefetching.
type Config = core.Config

// DefaultConfig returns a runtime configuration with the paper's defaults
// for the given local DRAM cache size.
func DefaultConfig(localCacheBytes uint64) Config {
	return core.DefaultConfig(localCacheBytes)
}

// Runtime is the Kona coherence-based remote-memory runtime (§4 of the
// paper): fetches on cache miss without page faults, tracks dirty data per
// 64-byte cache line, evicts through an aggregated cache-line log.
type Runtime = core.Kona

// VMRuntime is the paper's own Kona-VM baseline: the same caching and
// eviction policy built on page faults and 4KB-granularity tracking.
type VMRuntime = core.KonaVM

// Cluster is the rack controller managing memory-node registration and
// coarse slab allocation.
type Cluster = cluster.Controller

// MemoryNode is one disaggregated-memory host, running the cache-line log
// receiver.
type MemoryNode = cluster.MemoryNode

// NewCluster builds a rack with n memory nodes offering capacity bytes
// each — the common experiment setup.
func NewCluster(n int, capacity uint64) *Cluster {
	ctrl := cluster.NewController()
	for i := 0; i < n; i++ {
		if err := ctrl.Register(cluster.NewMemoryNode(i, capacity)); err != nil {
			// Registration of freshly numbered nodes cannot collide.
			panic(err)
		}
	}
	return ctrl
}

// New builds a Kona runtime attached to a cluster.
func New(cfg Config, c *Cluster) *Runtime { return core.NewKona(cfg, c) }

// NewVM builds the Kona-VM baseline runtime attached to a cluster.
func NewVM(cfg Config, c *Cluster) *VMRuntime { return core.NewKonaVM(cfg, c) }

// Granularities of the simulated platform.
const (
	// CacheLineSize is the dirty-tracking granularity (64B).
	CacheLineSize = mem.CacheLineSize
	// PageSize is the fetch/caching granularity (4KB).
	PageSize = mem.PageSize
)

// CoherentDomain is the fully assembled reference architecture: simulated
// CPU caches speaking MESI to a directory whose home memory is the Kona
// FPGA model, so CPU misses become remote fetches and cache writebacks
// become cache-line dirty tracking — with no explicit runtime calls.
type CoherentDomain = core.CoherentDomain

// Range is a byte interval in the disaggregated address space.
type Range = mem.Range

// AddrRange builds the range [start, start+n).
func AddrRange(start Addr, n uint64) Range { return Range{Start: start, Len: n} }

// NewTCP builds a runtime against a remote rack: a kona-controller daemon
// and kona-memnode daemons reached over TCP. Data moves over real sockets;
// measured wall-clock latencies fold into the virtual clock.
func NewTCP(cfg Config, controllerAddr string) *Runtime {
	return core.NewKonaTCP(cfg, controllerAddr)
}

// NewVMTCP builds the Kona-VM baseline against a remote rack over TCP.
func NewVMTCP(cfg Config, controllerAddr string) *VMRuntime {
	return core.NewKonaVMTCP(cfg, controllerAddr)
}

// TransportPolicy configures the TCP wire layer: dial and per-request
// deadlines, the retry budget with exponential backoff + jitter for
// idempotent RPCs, and the persistent-connection pool size per peer.
type TransportPolicy = cluster.Transport

// DefaultTransportPolicy returns the default TCP wire policy.
func DefaultTransportPolicy() TransportPolicy { return cluster.DefaultTransport() }

// NewTCPWith is NewTCP with an explicit wire policy.
func NewTCPWith(cfg Config, controllerAddr string, tr TransportPolicy) *Runtime {
	return core.NewKonaTCPWith(cfg, controllerAddr, tr)
}

// NewVMTCPWith is NewVMTCP with an explicit wire policy.
func NewVMTCPWith(cfg Config, controllerAddr string, tr TransportPolicy) *VMRuntime {
	return core.NewKonaVMTCPWith(cfg, controllerAddr, tr)
}

// AllocLib is the allocation-interposition layer (§4.1): it places small
// private allocations in local CMem and bulk data in disaggregated memory,
// dispatching reads and writes on the address.
type AllocLib = core.AllocLib

// NewAllocLib wraps a runtime with the interposition layer; threshold 0
// uses the default (one page).
func NewAllocLib(rt *Runtime, threshold uint64) *AllocLib {
	return core.NewAllocLib(rt, threshold)
}

// ErrRemoteUnavailable is returned when every replica of an address's
// slab is unreachable; the access can be retried once the outage resolves
// (§4.5 of the paper).
var ErrRemoteUnavailable = core.ErrRemoteUnavailable
