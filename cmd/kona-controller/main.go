// Command kona-controller runs the rack controller as a TCP daemon.
// Memory nodes register with it (see cmd/kona-memnode); compute-side
// clients request slabs from it.
//
// Usage:
//
//	kona-controller -listen 127.0.0.1:7070
//
// For failure-injection experiments the daemon can perturb its own
// listener (drop, delay, reset; see internal/cluster.FaultConfig):
//
//	kona-controller -listen 127.0.0.1:7070 -fault-drop 0.01 -fault-delay 0.2 -fault-max-delay 5ms -fault-seed 1
//
// -metrics-addr serves the telemetry registry over HTTP (DESIGN.md §7):
// GET /metrics (text, or ?format=json) and GET /debug/events.
//
//	kona-controller -listen 127.0.0.1:7070 -metrics-addr 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kona/internal/cluster"
	"kona/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/events on this HTTP address (empty = telemetry disabled)")
	sweepInterval := flag.Duration("sweep-interval", 500*time.Millisecond, "health-sweep + repair cadence (0 disables repair)")
	repairBudget := flag.Float64("repair-budget", 64<<20, "re-replication copy budget in bytes/sec (0 = unlimited)")
	placement := flag.String("placement", cluster.PolicyRR, "slab placement policy: rr (deterministic round-robin) or load (least-loaded with replica anti-affinity)")
	migrateRatio := flag.Float64("migrate-threshold", 0, "hot/cold load ratio that triggers live slab migration (0 disables migration)")
	migrateBudget := flag.Float64("migrate-budget", 64<<20, "migration copy budget in bytes/sec (0 = unlimited)")
	migrateMaxMoves := flag.Int("migrate-max-moves", 1, "max slab migrations started per sweep")
	leaseTTL := flag.Duration("lease-ttl", cluster.DefaultLeaseTTL, "default TTL for slab ownership leases (DESIGN.md §14)")
	grace := flag.Duration("drain-grace", 5*time.Second, "shutdown drain budget for in-flight RPCs")
	var (
		faultDrop    = flag.Float64("fault-drop", 0, "probability an I/O op drops the connection (chaos testing)")
		faultDelay   = flag.Float64("fault-delay", 0, "probability an I/O op is delayed (chaos testing)")
		faultMaxWait = flag.Duration("fault-max-delay", 5*time.Millisecond, "upper bound of an injected delay")
		faultPartial = flag.Float64("fault-partial", 0, "probability a write is truncated mid-frame (chaos testing)")
		faultReset   = flag.Float64("fault-reset", 0, "probability a fresh connection is reset immediately (chaos testing)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-injection RNG seed (0 = from clock)")
	)
	flag.Parse()

	var reg *telemetry.Registry // nil keeps every metric site a no-op
	if *metricsAddr != "" {
		reg = telemetry.New(0)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-controller: %v\n", err)
		os.Exit(1)
	}
	faults := *faultDrop > 0 || *faultDelay > 0 || *faultPartial > 0 || *faultReset > 0
	if faults {
		l = cluster.NewFaultListener(l, cluster.FaultConfig{
			Seed:             *faultSeed,
			DropProb:         *faultDrop,
			DelayProb:        *faultDelay,
			MaxDelay:         *faultMaxWait,
			PartialWriteProb: *faultPartial,
			ResetProb:        *faultReset,
			Metrics:          reg,
		})
	}

	ctrl := cluster.NewController()
	if err := ctrl.SetPlacementPolicy(*placement); err != nil {
		fmt.Fprintf(os.Stderr, "kona-controller: %v\n", err)
		os.Exit(1)
	}
	ctrl.SetLeaseTTL(*leaseTTL)
	srv := cluster.ServeControllerOnWith(ctrl, l, reg)
	defer srv.Close()

	// Background repair: sweep node health and re-replicate degraded slabs
	// onto healthy nodes over the data-RPC transport (§10).
	if *sweepInterval > 0 {
		repairTr := cluster.NewTCPRepairTransport(srv.NodeAddr, cluster.DefaultTransport())
		defer repairTr.Close()
		engine := cluster.NewRepairEngine(ctrl, repairTr, cluster.RepairConfig{
			BytesPerSec: *repairBudget,
			Interval:    *sweepInterval,
			Metrics:     reg,
		})
		stopRepair := make(chan struct{})
		defer close(stopRepair)
		go engine.Run(stopRepair)
	}

	// Live slab migration: sweep the load map (fed by memnode -load-interval
	// pushes and compute-side Sync reports) and move slabs off hot nodes
	// under a copy budget (DESIGN.md §13).
	if *sweepInterval > 0 && *migrateRatio > 0 {
		migTr := cluster.NewTCPMigrationTransport(srv.NodeAddr, cluster.DefaultTransport())
		defer migTr.Close()
		mig := cluster.NewMigrationEngine(ctrl, migTr, cluster.MigrationConfig{
			BytesPerSec:      *migrateBudget,
			Interval:         *sweepInterval,
			HotRatio:         *migrateRatio,
			MaxMovesPerSweep: *migrateMaxMoves,
			Metrics:          reg,
		})
		stopMig := make(chan struct{})
		defer close(stopMig)
		go mig.Run(stopMig)
	}

	metrics := "off"
	if reg != nil {
		ms, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-controller: metrics listener: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		metrics = ms.Addr()
	}
	// One structured line with the effective configuration, grep-able in
	// deployment logs.
	fmt.Printf("kona-controller: config listen=%s metrics=%s placement=%s migrate-threshold=%g lease-ttl=%s faults=%t fault-drop=%g fault-delay=%g fault-seed=%d\n",
		srv.Addr(), metrics, ctrl.PlacementPolicy(), *migrateRatio, *leaseTTL, faults, *faultDrop, *faultDelay, *faultSeed)
	fmt.Printf("kona-controller: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let in-flight RPCs finish, close.
	fmt.Println("kona-controller: draining")
	n := srv.Shutdown(*grace)
	fmt.Printf("kona-controller: drained %d connections, shutting down\n", n)
}
