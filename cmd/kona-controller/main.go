// Command kona-controller runs the rack controller as a TCP daemon.
// Memory nodes register with it (see cmd/kona-memnode); compute-side
// clients request slabs from it.
//
// Usage:
//
//	kona-controller -listen 127.0.0.1:7070
//
// For failure-injection experiments the daemon can perturb its own
// listener (drop, delay, reset; see internal/cluster.FaultConfig):
//
//	kona-controller -listen 127.0.0.1:7070 -fault-drop 0.01 -fault-delay 0.2 -fault-max-delay 5ms -fault-seed 1
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"kona/internal/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	var (
		faultDrop    = flag.Float64("fault-drop", 0, "probability an I/O op drops the connection (chaos testing)")
		faultDelay   = flag.Float64("fault-delay", 0, "probability an I/O op is delayed (chaos testing)")
		faultMaxWait = flag.Duration("fault-max-delay", 5*time.Millisecond, "upper bound of an injected delay")
		faultPartial = flag.Float64("fault-partial", 0, "probability a write is truncated mid-frame (chaos testing)")
		faultReset   = flag.Float64("fault-reset", 0, "probability a fresh connection is reset immediately (chaos testing)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-injection RNG seed (0 = from clock)")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-controller: %v\n", err)
		os.Exit(1)
	}
	if *faultDrop > 0 || *faultDelay > 0 || *faultPartial > 0 || *faultReset > 0 {
		l = cluster.NewFaultListener(l, cluster.FaultConfig{
			Seed:             *faultSeed,
			DropProb:         *faultDrop,
			DelayProb:        *faultDelay,
			MaxDelay:         *faultMaxWait,
			PartialWriteProb: *faultPartial,
			ResetProb:        *faultReset,
		})
		fmt.Println("kona-controller: fault injection enabled")
	}

	ctrl := cluster.NewController()
	srv := cluster.ServeControllerOn(ctrl, l)
	defer srv.Close()
	fmt.Printf("kona-controller: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("kona-controller: shutting down")
}
