// Command kona-controller runs the rack controller as a TCP daemon.
// Memory nodes register with it (see cmd/kona-memnode); compute-side
// clients request slabs from it.
//
// Usage:
//
//	kona-controller -listen 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"kona/internal/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	flag.Parse()

	ctrl := cluster.NewController()
	srv, err := cluster.ServeController(ctrl, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-controller: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("kona-controller: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("kona-controller: shutting down")
}
