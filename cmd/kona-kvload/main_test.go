package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// metricsPayload is a realistic controller /metrics page: load-map
// counters for two memnodes, the lease directory's counters, and noise
// (unrelated metrics, malformed lines) the scraper must skip.
const metricsPayload = `cluster.slabs.allocated 12
cluster.load.node.0.read_ops 1000
cluster.load.node.0.write_ops 200
cluster.load.node.0.read_bytes 4096000
cluster.load.node.0.write_bytes 819200
cluster.load.node.1.read_ops 3000
cluster.load.node.1.write_ops 600
cluster.load.node.1.read_bytes 12288000
cluster.load.node.1.write_bytes 2457600
cluster.load.node.bogus.read_ops 7
cluster.load.node.2.read_ops not-a-number
cluster.lease.grants 42
cluster.lease.publishes 17
cluster.lease.takeovers 1
cluster.lease.expirations 2
cluster.lease.rejects 3
cluster.lease.fence_errors 0
cluster.lease.writers 1
cluster.lease.readers 4
cluster.lease.garbage one two
rpc.requests 9999
`

// serveMetrics returns the host:port of a test server answering GET
// /metrics with the canned payload (the form -ctrl-metrics takes).
func serveMetrics(t *testing.T, payload string) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, payload)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestScrapeNodeLoads(t *testing.T) {
	addr := serveMetrics(t, metricsPayload)
	loads, leases, err := scrapeNodeLoads(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 {
		t.Fatalf("parsed %d nodes, want 2 (malformed ids must be skipped): %v", len(loads), loads)
	}
	if got := loads[0]["read_ops"]; got != 1000 {
		t.Errorf("node 0 read_ops = %d, want 1000", got)
	}
	if got := loads[1]["write_bytes"]; got != 2457600 {
		t.Errorf("node 1 write_bytes = %d, want 2457600", got)
	}
	for field, want := range map[string]uint64{
		"grants": 42, "publishes": 17, "takeovers": 1,
		"expirations": 2, "rejects": 3, "writers": 1, "readers": 4,
	} {
		if got := leases[field]; got != want {
			t.Errorf("lease %s = %d, want %d", field, got, want)
		}
	}
	if _, ok := leases["garbage"]; ok {
		t.Error("malformed lease line parsed")
	}

	if _, _, err := scrapeNodeLoads("127.0.0.1:1"); err == nil {
		t.Error("scrape of unreachable controller succeeded")
	}
}

// TestPrintNodeLoads pins the per-memnode distribution report: per-run
// deltas (not absolutes), ops shares summing the rack, and a counter
// reset (node rejoin mid-run) showing zero rather than garbage.
func TestPrintNodeLoads(t *testing.T) {
	before := map[int]map[string]uint64{
		0: {"read_ops": 1000, "write_ops": 200, "read_bytes": 4096000, "write_bytes": 819200},
		1: {"read_ops": 9000, "write_ops": 600, "read_bytes": 12288000, "write_bytes": 2457600},
	}
	after := map[int]map[string]uint64{
		0: {"read_ops": 1600, "write_ops": 400, "read_bytes": 8192000, "write_bytes": 1638400},
		1: {"read_ops": 100, "write_ops": 700, "read_bytes": 12288001, "write_bytes": 2457600},
	}
	out := captureStdout(t, func() { printNodeLoads(before, after) })
	// Node 0 did 600+200=800 delta ops; node 1's read counter reset
	// (9000→100, shows 0) leaving 100 write-delta ops: 800/900 ≈ 88.9%.
	if !strings.Contains(out, "88.9%") {
		t.Errorf("node 0 ops share missing from report:\n%s", out)
	}
	if !strings.Contains(out, "total       900 ops") {
		t.Errorf("total delta ops missing (counter reset must clamp to 0):\n%s", out)
	}

	empty := captureStdout(t, func() { printNodeLoads(nil, nil) })
	if !strings.Contains(empty, "no cluster.load.node") {
		t.Errorf("empty scrape must say why the table is missing:\n%s", empty)
	}
}

func TestPrintLeaseActivity(t *testing.T) {
	before := map[string]uint64{"grants": 40, "publishes": 10, "takeovers": 1, "rejects": 3}
	after := map[string]uint64{
		"grants": 100, "publishes": 17, "takeovers": 1, "expirations": 2,
		"rejects": 2, // reset mid-run → delta clamps to 0
		"writers": 1, "readers": 4,
	}
	out := captureStdout(t, func() { printLeaseActivity(before, after) })
	want := "lease activity (this run): grants=60 publishes=7 takeovers=0 expirations=2 rejects=0 fence_errors=0 (now writers=1 readers=4)"
	if !strings.Contains(out, want) {
		t.Errorf("lease report = %q, want containing %q", strings.TrimSpace(out), want)
	}

	// A pre-lease controller exposes no cluster.lease.* metrics: stay quiet.
	if out := captureStdout(t, func() { printLeaseActivity(nil, map[string]uint64{}) }); out != "" {
		t.Errorf("printed lease activity with no lease metrics: %q", out)
	}
}
