// Command kona-kvload is the open-loop load generator for kona-kvd
// (DESIGN.md §12): it simulates a large population of distinct users —
// zipfian key popularity, configurable read/write mix and value-size
// distribution — arriving as a Poisson process whose rate does not slow
// down when the server does, so queueing delay lands in the reported
// latencies instead of being silently absorbed. It reports p50/p99/p999
// per op class against a configurable SLO and can re-read every
// acknowledged write afterwards to prove none was lost or torn.
//
//	kona-kvload -addr 127.0.0.1:11211 -ops 1000000 -rate 20000 \
//	    -keys 1000000 -zipf 1.1 -read-frac 0.9 -conns 8 \
//	    -slo-p99 5ms -slo-p999 20ms -verify
//
// The exit status encodes the outcome for CI: 0 = run clean and SLO
// met, 1 = setup/transport failure, 2 = SLO missed, 3 = verify found
// lost/torn/stale acknowledged writes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"kona/internal/kv"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:11211", "kona-kvd address")
		ops         = flag.Uint64("ops", 100000, "operations to issue (0 = run for -duration)")
		duration    = flag.Duration("duration", 0, "generated arrival-time horizon when -ops 0")
		rate        = flag.Float64("rate", 5000, "Poisson arrival rate, ops/sec")
		keys        = flag.Uint64("keys", 1_000_000, "distinct keys (simulated users)")
		zipfS       = flag.Float64("zipf", 1.1, "zipf skew (>1; higher = hotter hot set)")
		readFrac    = flag.Float64("read-frac", 0.9, "fraction of ops that are GETs")
		sizes       = flag.String("value-sizes", "", "value-size distribution as bytes:weight[,bytes:weight...] (default small-object mix)")
		conns       = flag.Int("conns", 8, "client connections (keys hash-route to conns)")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		sloP99      = flag.Duration("slo-p99", 0, "p99 latency objective (0 = unchecked)")
		sloP999     = flag.Duration("slo-p999", 0, "p999 latency objective (0 = unchecked)")
		verify      = flag.Bool("verify", false, "after the run, re-read every acknowledged write and prove none was lost or torn")
		progress    = flag.Duration("progress", 5*time.Second, "progress report cadence (0 = quiet)")
		ctrlMetrics = flag.String("ctrl-metrics", "", "rack controller metrics address (host:port); print the run's per-memnode op/byte distribution from its load map")
	)
	flag.Parse()

	sizeClasses, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvload: %v\n", err)
		os.Exit(1)
	}

	cfg := kv.LoadConfig{
		Workload: kv.WorkloadConfig{
			Keys:         *keys,
			ZipfS:        *zipfS,
			ReadFraction: *readFrac,
			ValueSizes:   sizeClasses,
			RatePerSec:   *rate,
			Seed:         *seed,
		},
		Conns:    *conns,
		Ops:      *ops,
		Duration: *duration,
		SLOp99:   *sloP99,
		SLOp999:  *sloP999,
		Verify:   *verify,
	}
	engine, err := kv.NewEngine(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("kona-kvload: config addr=%s ops=%d duration=%s rate=%g keys=%d zipf=%g read-frac=%g conns=%d seed=%d verify=%t\n",
		*addr, *ops, *duration, *rate, *keys, *zipfS, *readFrac, *conns, *seed, *verify)

	stopProgress := make(chan struct{})
	if *progress > 0 {
		go func() {
			t := time.NewTicker(*progress)
			defer t.Stop()
			start := time.Now()
			for {
				select {
				case <-stopProgress:
					return
				case <-t.C:
					fmt.Printf("kona-kvload: %s elapsed, %d issued, %d completed, %d errors\n",
						time.Since(start).Round(time.Second), engine.Issued(), engine.Completed(), engine.Errors())
				}
			}
		}()
	}

	// Per-memnode distribution: snapshot the controller's load-map (and
	// lease-directory) counters around the run so only this run's traffic
	// shows in the deltas. Scrape failures are reported but never fail the
	// run — the distribution is diagnostics, not a result.
	var loadBefore map[int]map[string]uint64
	var leaseBefore map[string]uint64
	if *ctrlMetrics != "" {
		var serr error
		if loadBefore, leaseBefore, serr = scrapeNodeLoads(*ctrlMetrics); serr != nil {
			fmt.Fprintf(os.Stderr, "kona-kvload: controller metrics scrape: %v\n", serr)
		}
	}

	res, err := engine.Run(*addr)
	close(stopProgress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nkona-kvload: %d/%d ops completed in %s (%d errors)\n",
		res.Completed, res.Issued, res.Wall.Round(time.Millisecond), res.Errors)
	fmt.Printf("  offered %.0f ops/s, achieved %.0f ops/s\n", res.OfferedRate, res.AchievedRate)
	fmt.Printf("  gets: %d (%d hits, %d misses)   sets: %d\n", res.Get.Count, res.Hits, res.Misses, res.Set.Count)
	printLat := func(name string, l kv.LatencySummary) {
		if l.Count == 0 {
			return
		}
		fmt.Printf("  %-5s p50=%-10s p99=%-10s p999=%-10s mean=%s\n",
			name, l.P50, l.P99, l.P999, l.Mean)
	}
	printLat("get", res.Get)
	printLat("set", res.Set)
	printLat("all", res.All)
	if *sloP99 > 0 || *sloP999 > 0 {
		verdict := "MET"
		if res.SLOViolated {
			verdict = "VIOLATED"
		}
		fmt.Printf("  SLO (p99<=%s p999<=%s): %s\n", orDash(*sloP99), orDash(*sloP999), verdict)
	}
	if *verify {
		fmt.Printf("  verify: %d acknowledged keys checked, %d missing, %d torn, %d stale\n",
			res.VerifiedKeys, res.Missing, res.Torn, res.Stale)
	}
	if *ctrlMetrics != "" {
		loadAfter, leaseAfter, serr := scrapeNodeLoads(*ctrlMetrics)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "kona-kvload: controller metrics scrape: %v\n", serr)
		} else {
			printNodeLoads(loadBefore, loadAfter)
			printLeaseActivity(leaseBefore, leaseAfter)
		}
	}

	switch {
	case *verify && res.Missing+res.Torn+res.Stale > 0:
		os.Exit(3)
	case res.SLOViolated:
		os.Exit(2)
	}
}

// scrapeNodeLoads fetches the controller's /metrics text and returns the
// cluster.load.node.<id>.<field> values keyed by node id, then field
// (read_ops, write_ops, read_bytes, write_bytes, score, pending), plus
// the cluster.lease.<field> ownership-directory counters keyed by field
// (grants, publishes, takeovers, ...; DESIGN.md §14).
func scrapeNodeLoads(addr string) (map[int]map[string]uint64, map[string]uint64, error) {
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	out := make(map[int]map[string]uint64)
	leases := make(map[string]uint64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "cluster.lease."); ok {
			nameVal := strings.Fields(rest) // "<field> <value>"
			if len(nameVal) != 2 {
				continue
			}
			if v, verr := strconv.ParseUint(nameVal[1], 10, 64); verr == nil {
				leases[nameVal[0]] = v
			}
			continue
		}
		rest, ok := strings.CutPrefix(sc.Text(), "cluster.load.node.")
		if !ok {
			continue
		}
		nameVal := strings.Fields(rest) // "<id>.<field> <value>"
		if len(nameVal) != 2 {
			continue
		}
		idField := strings.SplitN(nameVal[0], ".", 2)
		if len(idField) != 2 {
			continue
		}
		id, ierr := strconv.Atoi(idField[0])
		v, verr := strconv.ParseUint(nameVal[1], 10, 64)
		if ierr != nil || verr != nil {
			continue
		}
		if out[id] == nil {
			out[id] = make(map[string]uint64)
		}
		out[id][idField[1]] = v
	}
	return out, leases, sc.Err()
}

// printNodeLoads prints the per-memnode op/byte distribution for the run:
// the delta of each node's load-map counters across the run, with each
// node's share of the total. An even rack shows near-equal shares; a
// skewed one is the signal that load-aware placement or migration is
// worth enabling.
func printNodeLoads(before, after map[int]map[string]uint64) {
	var ids []int
	for id := range after {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		fmt.Println("  memnode distribution: no cluster.load.node.* metrics (are memnodes pushing load reports?)")
		return
	}
	delta := func(id int, field string) uint64 {
		a := after[id][field]
		if b := before[id][field]; b < a {
			return a - b
		}
		return 0 // counter reset mid-run (node rejoin): show nothing rather than garbage
	}
	var totOps, totBytes uint64
	for _, id := range ids {
		totOps += delta(id, "read_ops") + delta(id, "write_ops")
		totBytes += delta(id, "read_bytes") + delta(id, "write_bytes")
	}
	fmt.Println("\n  memnode distribution (this run):")
	fmt.Println("  node   read_ops  write_ops   read_bytes  write_bytes  ops-share")
	for _, id := range ids {
		ops := delta(id, "read_ops") + delta(id, "write_ops")
		share := 0.0
		if totOps > 0 {
			share = 100 * float64(ops) / float64(totOps)
		}
		fmt.Printf("  %4d %10d %10d %12d %12d     %5.1f%%\n",
			id, delta(id, "read_ops"), delta(id, "write_ops"),
			delta(id, "read_bytes"), delta(id, "write_bytes"), share)
	}
	fmt.Printf("  total %9d ops %26d bytes\n", totOps, totBytes)
}

// printLeaseActivity prints the lease-directory counter deltas for the
// run (slab-sharing traffic: grants, publishes, takeovers; DESIGN.md
// §14). The writers/readers gauges print as absolute values — they are
// occupancy, not counters. Quiet when the controller exposes no lease
// metrics at all (pre-lease daemon).
func printLeaseActivity(before, after map[string]uint64) {
	if len(after) == 0 {
		return
	}
	delta := func(field string) uint64 {
		a := after[field]
		if b := before[field]; b < a {
			return a - b
		}
		return 0
	}
	fmt.Printf("  lease activity (this run): grants=%d publishes=%d takeovers=%d expirations=%d rejects=%d fence_errors=%d (now writers=%d readers=%d)\n",
		delta("grants"), delta("publishes"), delta("takeovers"), delta("expirations"),
		delta("rejects"), delta("fence_errors"), after["writers"], after["readers"])
}

func orDash(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.String()
}

// parseSizes reads "64:30,512:20" into size classes.
func parseSizes(s string) ([]kv.SizeClass, error) {
	if s == "" {
		return nil, nil
	}
	var out []kv.SizeClass
	for _, part := range strings.Split(s, ",") {
		bw := strings.SplitN(part, ":", 2)
		if len(bw) != 2 {
			return nil, fmt.Errorf("bad size class %q (want bytes:weight)", part)
		}
		b, berr := strconv.Atoi(strings.TrimSpace(bw[0]))
		w, werr := strconv.ParseFloat(strings.TrimSpace(bw[1]), 64)
		if berr != nil || werr != nil {
			return nil, fmt.Errorf("bad size class %q (want bytes:weight)", part)
		}
		out = append(out, kv.SizeClass{Bytes: b, Weight: w})
	}
	return out, nil
}
