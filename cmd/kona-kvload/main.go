// Command kona-kvload is the open-loop load generator for kona-kvd
// (DESIGN.md §12): it simulates a large population of distinct users —
// zipfian key popularity, configurable read/write mix and value-size
// distribution — arriving as a Poisson process whose rate does not slow
// down when the server does, so queueing delay lands in the reported
// latencies instead of being silently absorbed. It reports p50/p99/p999
// per op class against a configurable SLO and can re-read every
// acknowledged write afterwards to prove none was lost or torn.
//
//	kona-kvload -addr 127.0.0.1:11211 -ops 1000000 -rate 20000 \
//	    -keys 1000000 -zipf 1.1 -read-frac 0.9 -conns 8 \
//	    -slo-p99 5ms -slo-p999 20ms -verify
//
// The exit status encodes the outcome for CI: 0 = run clean and SLO
// met, 1 = setup/transport failure, 2 = SLO missed, 3 = verify found
// lost/torn/stale acknowledged writes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kona/internal/kv"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11211", "kona-kvd address")
		ops      = flag.Uint64("ops", 100000, "operations to issue (0 = run for -duration)")
		duration = flag.Duration("duration", 0, "generated arrival-time horizon when -ops 0")
		rate     = flag.Float64("rate", 5000, "Poisson arrival rate, ops/sec")
		keys     = flag.Uint64("keys", 1_000_000, "distinct keys (simulated users)")
		zipfS    = flag.Float64("zipf", 1.1, "zipf skew (>1; higher = hotter hot set)")
		readFrac = flag.Float64("read-frac", 0.9, "fraction of ops that are GETs")
		sizes    = flag.String("value-sizes", "", "value-size distribution as bytes:weight[,bytes:weight...] (default small-object mix)")
		conns    = flag.Int("conns", 8, "client connections (keys hash-route to conns)")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		sloP99   = flag.Duration("slo-p99", 0, "p99 latency objective (0 = unchecked)")
		sloP999  = flag.Duration("slo-p999", 0, "p999 latency objective (0 = unchecked)")
		verify   = flag.Bool("verify", false, "after the run, re-read every acknowledged write and prove none was lost or torn")
		progress = flag.Duration("progress", 5*time.Second, "progress report cadence (0 = quiet)")
	)
	flag.Parse()

	sizeClasses, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvload: %v\n", err)
		os.Exit(1)
	}

	cfg := kv.LoadConfig{
		Workload: kv.WorkloadConfig{
			Keys:         *keys,
			ZipfS:        *zipfS,
			ReadFraction: *readFrac,
			ValueSizes:   sizeClasses,
			RatePerSec:   *rate,
			Seed:         *seed,
		},
		Conns:    *conns,
		Ops:      *ops,
		Duration: *duration,
		SLOp99:   *sloP99,
		SLOp999:  *sloP999,
		Verify:   *verify,
	}
	engine, err := kv.NewEngine(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("kona-kvload: config addr=%s ops=%d duration=%s rate=%g keys=%d zipf=%g read-frac=%g conns=%d seed=%d verify=%t\n",
		*addr, *ops, *duration, *rate, *keys, *zipfS, *readFrac, *conns, *seed, *verify)

	stopProgress := make(chan struct{})
	if *progress > 0 {
		go func() {
			t := time.NewTicker(*progress)
			defer t.Stop()
			start := time.Now()
			for {
				select {
				case <-stopProgress:
					return
				case <-t.C:
					fmt.Printf("kona-kvload: %s elapsed, %d issued, %d completed, %d errors\n",
						time.Since(start).Round(time.Second), engine.Issued(), engine.Completed(), engine.Errors())
				}
			}
		}()
	}

	res, err := engine.Run(*addr)
	close(stopProgress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nkona-kvload: %d/%d ops completed in %s (%d errors)\n",
		res.Completed, res.Issued, res.Wall.Round(time.Millisecond), res.Errors)
	fmt.Printf("  offered %.0f ops/s, achieved %.0f ops/s\n", res.OfferedRate, res.AchievedRate)
	fmt.Printf("  gets: %d (%d hits, %d misses)   sets: %d\n", res.Get.Count, res.Hits, res.Misses, res.Set.Count)
	printLat := func(name string, l kv.LatencySummary) {
		if l.Count == 0 {
			return
		}
		fmt.Printf("  %-5s p50=%-10s p99=%-10s p999=%-10s mean=%s\n",
			name, l.P50, l.P99, l.P999, l.Mean)
	}
	printLat("get", res.Get)
	printLat("set", res.Set)
	printLat("all", res.All)
	if *sloP99 > 0 || *sloP999 > 0 {
		verdict := "MET"
		if res.SLOViolated {
			verdict = "VIOLATED"
		}
		fmt.Printf("  SLO (p99<=%s p999<=%s): %s\n", orDash(*sloP99), orDash(*sloP999), verdict)
	}
	if *verify {
		fmt.Printf("  verify: %d acknowledged keys checked, %d missing, %d torn, %d stale\n",
			res.VerifiedKeys, res.Missing, res.Torn, res.Stale)
	}

	switch {
	case *verify && res.Missing+res.Torn+res.Stale > 0:
		os.Exit(3)
	case res.SLOViolated:
		os.Exit(2)
	}
}

func orDash(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.String()
}

// parseSizes reads "64:30,512:20" into size classes.
func parseSizes(s string) ([]kv.SizeClass, error) {
	if s == "" {
		return nil, nil
	}
	var out []kv.SizeClass
	for _, part := range strings.Split(s, ",") {
		bw := strings.SplitN(part, ":", 2)
		if len(bw) != 2 {
			return nil, fmt.Errorf("bad size class %q (want bytes:weight)", part)
		}
		b, berr := strconv.Atoi(strings.TrimSpace(bw[0]))
		w, werr := strconv.ParseFloat(strings.TrimSpace(bw[1]), 64)
		if berr != nil || werr != nil {
			return nil, fmt.Errorf("bad size class %q (want bytes:weight)", part)
		}
		out = append(out, kv.SizeClass{Bytes: b, Weight: w})
	}
	return out, nil
}
