// Command kona-kvd is the memcached-style KV daemon on Kona remote
// memory (DESIGN.md §12): the key index lives in local memory, every
// value lives in disaggregated pages behind the runtime's fetch /
// dirty-track / evict path, and keys route to lock-striped store shards
// by consistent hashing.
//
// Against a real rack (a kona-controller and its kona-memnodes):
//
//	kona-kvd -listen 127.0.0.1:11211 -controller 127.0.0.1:7070 \
//	         -cache-bytes 8388608 -replicas 2 -metrics-addr 127.0.0.1:9092
//
// With no -controller it builds an in-process simulated rack — a
// single-binary demo target for kona-kvload.
//
// The protocol is memcached's text protocol: get/gets, set, delete,
// stats, version, quit (exptime accepted, ignored — eviction is
// capacity-driven via -max-bytes). SIGINT/SIGTERM drain gracefully:
// stop accepting, finish in-flight commands, sync the cache-line log,
// then exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kona"
	"kona/internal/kv"
	"kona/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:11211", "TCP listen address for the KV protocol")
		ctrlAddr    = flag.String("controller", "", "rack controller address (empty = in-process simulated rack)")
		cacheBytes  = flag.Uint64("cache-bytes", 16<<20, "local FMem cache size (the paper's knob: smaller = more remote traffic)")
		replicas    = flag.Int("replicas", 1, "memory-node copies per slab")
		shards      = flag.Int("shards", 16, "store shard count (consistent-hash routed)")
		maxBytes    = flag.Uint64("max-bytes", 0, "live value-heap cap; past it LRU entries are evicted (0 = uncapped)")
		simNodes    = flag.Int("sim-nodes", 2, "memory nodes in the in-process rack (no -controller only)")
		simCapacity = flag.Uint64("sim-capacity", 256<<20, "per-node capacity of the in-process rack")
		syncEvery   = flag.Duration("sync-interval", 100*time.Millisecond, "background cache-line-log sync cadence")
		grace       = flag.Duration("drain-grace", 5*time.Second, "shutdown drain budget for in-flight commands")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/events on this HTTP address (empty = telemetry disabled)")

		dialTimeout = flag.Duration("dial-timeout", 2*time.Second, "TCP dial timeout to the rack")
		reqTimeout  = flag.Duration("req-timeout", 5*time.Second, "per-attempt rack request deadline")
		retries     = flag.Int("retries", 3, "retry budget for idempotent rack requests (-1 disables)")
		poolSize    = flag.Int("pool", 4, "persistent connections kept per rack peer")
	)
	flag.Parse()

	var reg *telemetry.Registry // nil keeps every metric site a no-op
	if *metricsAddr != "" {
		reg = telemetry.New(0)
	}

	cfg := kona.DefaultConfig(*cacheBytes)
	cfg.Replicas = *replicas
	cfg.Metrics = reg

	var rt kv.Runtime
	if *ctrlAddr != "" {
		tr := kona.DefaultTransportPolicy()
		tr.DialTimeout = *dialTimeout
		tr.RequestTimeout = *reqTimeout
		tr.MaxRetries = *retries
		tr.PoolSize = *poolSize
		tr.Metrics = reg
		rt = kona.NewTCPWith(cfg, *ctrlAddr, tr)
	} else {
		rt = kona.New(cfg, kona.NewCluster(*simNodes, *simCapacity))
	}

	store := kv.NewStore(rt, kv.Config{
		Shards:   *shards,
		MaxBytes: *maxBytes,
		Metrics:  reg,
	})
	srv := kv.NewServer(store, reg)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvd: %v\n", err)
		os.Exit(1)
	}

	metrics := "off"
	if reg != nil {
		ms, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-kvd: metrics listener: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		metrics = ms.Addr()
	}

	rack := *ctrlAddr
	if rack == "" {
		rack = fmt.Sprintf("sim(%d nodes x %dMB)", *simNodes, *simCapacity>>20)
	}
	// One structured line with the effective configuration, grep-able in
	// deployment logs.
	fmt.Printf("kona-kvd: config listen=%s rack=%s cache=%d replicas=%d shards=%d max-bytes=%d sync=%s metrics=%s\n",
		l.Addr(), rack, *cacheBytes, *replicas, *shards, *maxBytes, *syncEvery, metrics)

	stopSync := make(chan struct{})
	go srv.RunSyncLoop(*syncEvery, stopSync, func(err error) {
		fmt.Fprintf(os.Stderr, "kona-kvd: %v\n", err)
	})

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	fmt.Printf("kona-kvd: serving keys on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("kona-kvd: %v: draining (grace %s)\n", s, *grace)
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-kvd: serve: %v\n", err)
			os.Exit(1)
		}
	}
	drained := srv.Shutdown(*grace)
	close(stopSync)
	// Final sync: every acknowledged write reaches the memory nodes
	// before the process exits.
	if _, err := store.Sync(store.Clock()); err != nil {
		fmt.Fprintf(os.Stderr, "kona-kvd: final sync: %v\n", err)
	}
	st := store.Stats()
	fmt.Printf("kona-kvd: drained %d connections; served %d keys, %d hits, %d misses, %d evictions\n",
		drained, st.Keys, st.Hits, st.Misses, st.Evictions)
}
