// Command kona-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kona-bench -list
//	kona-bench -run table2
//	kona-bench -run fig8a,fig8b -quick -plot
//	kona-bench -run all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kona/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated artifact ids, or 'all'")
		list  = flag.Bool("list", false, "list available artifacts and exit")
		quick = flag.Bool("quick", false, "reduced trace lengths for fast runs")
		plot  = flag.Bool("plot", false, "render each figure as an ASCII chart too")
		out   = flag.String("out", "", "also write results to this file")
		seed  = flag.Int64("seed", 42, "deterministic seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Describe(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	var sinks []io.Writer
	sinks = append(sinks, os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(w, res.String())
		if *plot {
			if c := res.Chart(); c != "" {
				fmt.Fprintln(w, c)
			}
		}
	}
}
