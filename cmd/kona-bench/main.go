// Command kona-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kona-bench -list
//	kona-bench -run table2
//	kona-bench -run fig8a,fig8b -quick -plot
//	kona-bench -run all -out results.txt
//	kona-bench -run all -quick -parallel 8
//	kona-bench -run fig7 -quick -telemetry
//	kona-bench -run fig8a -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Artifacts regenerate on the parallel experiment engine (-parallel
// bounds the worker pool; the default uses every core) and print in
// stable ID order, so output is byte-identical to a serial run for a
// fixed seed.
//
// -telemetry threads a fresh telemetry registry through each artifact's
// runtimes and prints the counters it accumulated after the artifact's
// output — per-artifact deltas by construction. It forces serial
// execution so attribution is exact.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"kona/internal/experiments"
	"kona/internal/stats"
	"kona/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "kona-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs     = flag.String("run", "all", "comma-separated artifact ids, or 'all'")
		list       = flag.Bool("list", false, "list available artifacts and exit")
		quick      = flag.Bool("quick", false, "reduced trace lengths for fast runs")
		plot       = flag.Bool("plot", false, "render each figure as an ASCII chart too")
		out        = flag.String("out", "", "also write results to this file")
		seed       = flag.Int64("seed", 42, "deterministic seed")
		parallel   = flag.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = serial)")
		telem      = flag.Bool("telemetry", false, "print per-artifact runtime counters (forces serial execution)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Describe(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return nil
	}

	// Validate the full ID list before executing anything: a typo must not
	// abort mid-run after printing partial results.
	ids := experiments.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
		var unknown []string
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
			if _, ok := experiments.Describe(ids[i]); !ok {
				unknown = append(unknown, ids[i])
			}
		}
		if len(unknown) > 0 {
			return fmt.Errorf("unknown artifact(s) %s (have %s)",
				strings.Join(unknown, ", "), strings.Join(experiments.IDs(), ", "))
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var sinks []io.Writer
	sinks = append(sinks, os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *parallel}
	print := func(res *experiments.Result) {
		fmt.Fprintln(w, res.String())
		if *plot {
			if c := res.Chart(); c != "" {
				fmt.Fprintln(w, c)
			}
		}
	}
	var runErr error
	if *telem {
		// One fresh registry per artifact, run serially: the printed
		// counters are exactly what that artifact's runtimes did.
		cfg.Workers = 1
		for _, id := range ids {
			reg := telemetry.New(0)
			cfg.Metrics = reg
			res, err := experiments.Run(id, cfg)
			if err != nil {
				runErr = errors.Join(runErr, err)
				continue
			}
			print(res)
			if tt := telemetryTable(reg.Snapshot()); tt != "" {
				fmt.Fprintf(w, "-- %s telemetry --\n%s", id, tt)
			}
		}
	} else {
		var results []*experiments.Result
		results, runErr = experiments.RunMany(ids, cfg)
		for _, res := range results {
			print(res)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	// Failed artifacts surface together after the successful output.
	return runErr
}

// telemetryTable renders a snapshot's non-zero counters and gauges (plus
// histogram summaries) as an aligned stats table, sorted by metric name.
// Returns "" when the artifact touched no instrumented path.
func telemetryTable(s telemetry.Snapshot) string {
	type row struct {
		name  string
		value string
	}
	var rows []row
	for name, v := range s.Counters {
		if v != 0 {
			rows = append(rows, row{name, fmt.Sprintf("%d", v)})
		}
	}
	for name, v := range s.Gauges {
		if v != 0 {
			rows = append(rows, row{name, fmt.Sprintf("%d", v)})
		}
	}
	for name, h := range s.Histograms {
		if h.Count != 0 {
			rows = append(rows, row{name,
				fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d", h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))})
		}
	}
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	t := stats.NewTable("metric", "value")
	for _, r := range rows {
		t.AddRow(r.name, r.value)
	}
	return t.String()
}
