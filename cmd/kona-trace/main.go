// Command kona-trace generates and inspects workload memory-access traces
// in the repository's KTR1 binary format.
//
// Usage:
//
//	kona-trace -list
//	kona-trace -workload Redis-Rand -out redis.ktr
//	kona-trace -inspect redis.ktr
//	kona-trace -replay redis.ktr -footprint 67108864
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/trace"
	"kona/internal/workload"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available workloads")
		name      = flag.String("workload", "", "workload to generate (see -list)")
		out       = flag.String("out", "", "output trace file")
		inspect   = flag.String("inspect", "", "trace file to summarize")
		replay    = flag.String("replay", "", "trace file to replay against both runtimes")
		footprint = flag.Uint64("footprint", 64<<20, "replay footprint in bytes")
		cachePct  = flag.Float64("cache", 25, "replay local cache as % of footprint")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		max       = flag.Int("max", 0, "cap on records generated/replayed (0 = all)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, w := range append(workload.All(), workload.Extras()...) {
			fmt.Printf("%-22s footprint %4dMB  windows %3d  (paper: %gGB)\n",
				w.Name, w.Footprint>>20, w.Windows, w.PaperFootprintGB)
		}
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := replayTrace(*replay, *footprint, *cachePct, *max); err != nil {
			fatal(err)
		}
	case *name != "":
		if *out == "" {
			fatal(errors.New("-out required with -workload"))
		}
		if err := generate(*name, *out, *seed, *max); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kona-trace: %v\n", err)
	os.Exit(1)
}

func generate(name, out string, seed int64, max int) error {
	w, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q (see -list)", name)
	}
	tw, closer, err := trace.CreateFile(out)
	if err != nil {
		return err
	}
	defer closer.Close()
	src := w.TrackingStream(seed)
	n := 0
	for {
		a, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if err := tw.Write(a); err != nil {
			return err
		}
		n++
		if max > 0 && n >= max {
			break
		}
	}
	if err := closer.Close(); err != nil {
		return err
	}
	fmt.Printf("kona-trace: wrote %d records to %s\n", n, out)
	return nil
}

// replayTrace drives both runtimes with a captured trace and reports the
// end-to-end comparison (the §5 instrumented-execution methodology).
func replayTrace(path string, footprint uint64, cachePct float64, max int) error {
	run := func(vm bool) (core.ReplayResult, error) {
		tr, closer, err := trace.OpenFile(path)
		if err != nil {
			return core.ReplayResult{}, err
		}
		defer closer.Close()
		ctrl := cluster.NewController()
		for i := 0; i < 2; i++ {
			if err := ctrl.Register(cluster.NewMemoryNode(i, 2*footprint)); err != nil {
				return core.ReplayResult{}, err
			}
		}
		cacheBytes := uint64(cachePct / 100 * float64(footprint))
		if cacheBytes < 4*4096 {
			cacheBytes = 4 * 4096
		}
		cfg := core.DefaultConfig(cacheBytes / (4 * 4096) * (4 * 4096))
		cfg.SlabSize = footprint
		var rt core.Replayer
		if vm {
			rt = core.NewKonaVM(cfg, ctrl)
		} else {
			rt = core.NewKona(cfg, ctrl)
		}
		return core.ReplayTrace(rt, tr, footprint, max)
	}
	kres, err := run(false)
	if err != nil {
		return err
	}
	vres, err := run(true)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d accesses (%d B read, %d B written), %.0f%% local cache\n",
		path, kres.Accesses, kres.BytesRead, kres.BytesWritten, cachePct)
	fmt.Printf("  Kona    : %v\n  Kona-VM : %v\n  speedup : %.2fx\n",
		kres.Elapsed, vres.Elapsed, float64(vres.Elapsed)/float64(kres.Elapsed))
	return nil
}

func inspectTrace(path string) error {
	r, closer, err := trace.OpenFile(path)
	if err != nil {
		return err
	}
	defer closer.Close()
	var records, reads, writes, bytesRead, bytesWritten uint64
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		records++
		if a.Kind == trace.Write {
			writes++
			bytesWritten += uint64(a.Size)
		} else {
			reads++
			bytesRead += uint64(a.Size)
		}
	}
	fmt.Printf("%s: %d records (%d reads / %d writes), %d bytes read, %d bytes written\n",
		path, records, reads, writes, bytesRead, bytesWritten)
	return nil
}
