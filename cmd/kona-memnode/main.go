// Command kona-memnode runs one disaggregated-memory node as a TCP
// daemon: it registers its offered capacity with the rack controller and
// serves remote reads, remote writes and the cache-line log receiver.
//
// Usage:
//
//	kona-memnode -id 0 -capacity 67108864 -controller 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"kona/internal/cluster"
)

func main() {
	var (
		id       = flag.Int("id", 0, "node identifier (unique per rack)")
		capacity = flag.Uint64("capacity", 64<<20, "offered memory in bytes")
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		ctrlAddr = flag.String("controller", "", "controller address to register with (optional)")
	)
	flag.Parse()

	node := cluster.NewMemoryNode(*id, *capacity)
	srv, err := cluster.ServeMemoryNode(node, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-memnode: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("kona-memnode: node %d serving %d bytes on %s\n", *id, *capacity, srv.Addr())

	if *ctrlAddr != "" {
		if err := cluster.DialController(*ctrlAddr).RegisterNode(*id, *capacity, srv.Addr()); err != nil {
			fmt.Fprintf(os.Stderr, "kona-memnode: registration failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kona-memnode: registered with controller %s\n", *ctrlAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("kona-memnode: shutting down")
}
