// Command kona-memnode runs one disaggregated-memory node as a TCP
// daemon: it registers its offered capacity with the rack controller and
// serves remote reads, remote writes and the cache-line log receiver.
//
// Usage:
//
//	kona-memnode -id 0 -capacity 67108864 -controller 127.0.0.1:7070
//
// The registration client's wire policy is configurable (-dial-timeout,
// -req-timeout, -retries, -pool), and the daemon's own listener can
// inject faults for chaos testing (-fault-drop, -fault-delay, ...).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"kona/internal/cluster"
)

func main() {
	var (
		id       = flag.Int("id", 0, "node identifier (unique per rack)")
		capacity = flag.Uint64("capacity", 64<<20, "offered memory in bytes")
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		ctrlAddr = flag.String("controller", "", "controller address to register with (optional)")

		dialTimeout = flag.Duration("dial-timeout", 2*time.Second, "TCP dial timeout")
		reqTimeout  = flag.Duration("req-timeout", 5*time.Second, "per-attempt request deadline")
		retries     = flag.Int("retries", 3, "retry budget for idempotent requests (-1 disables)")
		poolSize    = flag.Int("pool", 4, "persistent connections kept per peer")

		faultDrop    = flag.Float64("fault-drop", 0, "probability an I/O op drops the connection (chaos testing)")
		faultDelay   = flag.Float64("fault-delay", 0, "probability an I/O op is delayed (chaos testing)")
		faultMaxWait = flag.Duration("fault-max-delay", 5*time.Millisecond, "upper bound of an injected delay")
		faultPartial = flag.Float64("fault-partial", 0, "probability a write is truncated mid-frame (chaos testing)")
		faultReset   = flag.Float64("fault-reset", 0, "probability a fresh connection is reset immediately (chaos testing)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-injection RNG seed (0 = from clock)")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-memnode: %v\n", err)
		os.Exit(1)
	}
	if *faultDrop > 0 || *faultDelay > 0 || *faultPartial > 0 || *faultReset > 0 {
		l = cluster.NewFaultListener(l, cluster.FaultConfig{
			Seed:             *faultSeed,
			DropProb:         *faultDrop,
			DelayProb:        *faultDelay,
			MaxDelay:         *faultMaxWait,
			PartialWriteProb: *faultPartial,
			ResetProb:        *faultReset,
		})
		fmt.Println("kona-memnode: fault injection enabled")
	}

	node := cluster.NewMemoryNode(*id, *capacity)
	srv := cluster.ServeMemoryNodeOn(node, l)
	defer srv.Close()
	fmt.Printf("kona-memnode: node %d serving %d bytes on %s\n", *id, *capacity, srv.Addr())

	if *ctrlAddr != "" {
		tr := cluster.Transport{
			DialTimeout:    *dialTimeout,
			RequestTimeout: *reqTimeout,
			MaxRetries:     *retries,
			PoolSize:       *poolSize,
		}
		cc := cluster.DialControllerTransport(*ctrlAddr, tr)
		defer cc.Close()
		if err := cc.RegisterNode(*id, *capacity, srv.Addr()); err != nil {
			fmt.Fprintf(os.Stderr, "kona-memnode: registration failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kona-memnode: registered with controller %s\n", *ctrlAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("kona-memnode: shutting down")
}
