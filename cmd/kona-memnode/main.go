// Command kona-memnode runs one disaggregated-memory node as a TCP
// daemon: it registers its offered capacity with the rack controller and
// serves remote reads, remote writes and the cache-line log receiver.
//
// Usage:
//
//	kona-memnode -id 0 -capacity 67108864 -controller 127.0.0.1:7070
//
// The registration client's wire policy is configurable (-dial-timeout,
// -req-timeout, -retries, -pool), and the daemon's own listener can
// inject faults for chaos testing (-fault-drop, -fault-delay, ...).
//
// -metrics-addr serves the node's telemetry registry over HTTP
// (DESIGN.md §7): GET /metrics (text, or ?format=json) and
// GET /debug/events. The registry covers both the serving side (request
// counters, log/read/write byte volumes) and the registration client's
// RPC latency histograms.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kona/internal/cluster"
	"kona/internal/telemetry"
)

func main() {
	var (
		id          = flag.Int("id", 0, "node identifier (unique per rack)")
		capacity    = flag.Uint64("capacity", 64<<20, "offered memory in bytes")
		listen      = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		ctrlAddr    = flag.String("controller", "", "controller address to register with (optional)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/events on this HTTP address (empty = telemetry disabled)")

		loadInterval = flag.Duration("load-interval", 500*time.Millisecond, "cadence of load reports pushed to the controller (0 disables)")

		dialTimeout = flag.Duration("dial-timeout", 2*time.Second, "TCP dial timeout")
		reqTimeout  = flag.Duration("req-timeout", 5*time.Second, "per-attempt request deadline")
		retries     = flag.Int("retries", 3, "retry budget for idempotent requests (-1 disables)")
		poolSize    = flag.Int("pool", 4, "persistent connections kept per peer")
		grace       = flag.Duration("drain-grace", 5*time.Second, "shutdown drain budget for in-flight RPCs")

		faultDrop    = flag.Float64("fault-drop", 0, "probability an I/O op drops the connection (chaos testing)")
		faultDelay   = flag.Float64("fault-delay", 0, "probability an I/O op is delayed (chaos testing)")
		faultMaxWait = flag.Duration("fault-max-delay", 5*time.Millisecond, "upper bound of an injected delay")
		faultPartial = flag.Float64("fault-partial", 0, "probability a write is truncated mid-frame (chaos testing)")
		faultReset   = flag.Float64("fault-reset", 0, "probability a fresh connection is reset immediately (chaos testing)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-injection RNG seed (0 = from clock)")
	)
	flag.Parse()

	var reg *telemetry.Registry // nil keeps every metric site a no-op
	if *metricsAddr != "" {
		reg = telemetry.New(0)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kona-memnode: %v\n", err)
		os.Exit(1)
	}
	faults := *faultDrop > 0 || *faultDelay > 0 || *faultPartial > 0 || *faultReset > 0
	if faults {
		l = cluster.NewFaultListener(l, cluster.FaultConfig{
			Seed:             *faultSeed,
			DropProb:         *faultDrop,
			DelayProb:        *faultDelay,
			MaxDelay:         *faultMaxWait,
			PartialWriteProb: *faultPartial,
			ResetProb:        *faultReset,
			Metrics:          reg,
		})
	}

	node := cluster.NewMemoryNode(*id, *capacity)
	srv := cluster.ServeMemoryNodeOnWith(node, l, reg)
	defer srv.Close()

	metrics := "off"
	if reg != nil {
		ms, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-memnode: metrics listener: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		metrics = ms.Addr()
	}
	// One structured line with the effective configuration, grep-able in
	// deployment logs.
	fmt.Printf("kona-memnode: config id=%d capacity=%d listen=%s controller=%s metrics=%s pool=%d retries=%d dial-timeout=%s req-timeout=%s faults=%t\n",
		*id, *capacity, srv.Addr(), *ctrlAddr, metrics, *poolSize, *retries, *dialTimeout, *reqTimeout, faults)
	fmt.Printf("kona-memnode: node %d serving %d bytes on %s\n", *id, *capacity, srv.Addr())

	if *ctrlAddr != "" {
		tr := cluster.Transport{
			DialTimeout:    *dialTimeout,
			RequestTimeout: *reqTimeout,
			MaxRetries:     *retries,
			PoolSize:       *poolSize,
			Metrics:        reg,
		}
		cc := cluster.DialControllerTransport(*ctrlAddr, tr)
		defer cc.Close()
		epoch, err := cc.RegisterNodeEpoch(*id, *capacity, srv.Addr())
		if err != nil {
			fmt.Fprintf(os.Stderr, "kona-memnode: registration failed: %v\n", err)
			os.Exit(1)
		}
		// Adopt the assigned incarnation: data RPCs stamped with an older
		// incarnation (pre-crash placements) are now fenced off (§10).
		node.SetIncarnation(epoch)
		fmt.Printf("kona-memnode: registered with controller %s (incarnation %d)\n", *ctrlAddr, epoch)

		// Push cumulative load counters to the controller's load map
		// (DESIGN.md §13). Best-effort: a dropped report only delays the
		// next load-map update, so errors are ignored.
		if *loadInterval > 0 {
			stopLoad := make(chan struct{})
			defer close(stopLoad)
			go func() {
				t := time.NewTicker(*loadInterval)
				defer t.Stop()
				for {
					select {
					case <-stopLoad:
						return
					case <-t.C:
						_ = cc.ReportLoad(*id, node.LoadCounters())
					}
				}
			}()
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let in-flight RPCs finish, close.
	fmt.Println("kona-memnode: draining")
	n := srv.Shutdown(*grace)
	fmt.Printf("kona-memnode: drained %d connections, shutting down\n", n)
}
